"""Pluggable compute backends for the molecule-lattice hot paths.

Profiling (BENCH_runtime.json) shows run-time molecule selection is the
slowest hot path by roughly 50x: the inner loops of
:func:`repro.core.selection.select_greedy` rebuild the demand supremum
per candidate, and :func:`repro.core.selection.select_exhaustive`
enumerates the per-SI choice product one combination at a time.  Both
are batched lattice operations over stacked ``N^n`` count vectors — a
perfect fit for vectorization, but also exactly the code whose
behaviour the paper's results depend on.

This module therefore splits *policy* from *kernels*:

* :class:`ComputeBackend` — the narrow interface: batched supremum /
  infimum / residual / determinant over stacked count rows, Pareto-mask
  extraction, and the two selection inner loops (greedy candidate scan,
  exhaustive enumeration).
* :class:`ReferenceBackend` — the pure-python kernels; the executable
  specification every other backend must match bit-for-bit (identical
  ``SelectionResult`` objects, not merely equal total benefit).
* :class:`NumpyBackend` — the vectorized fast path: one
  ``(candidates x kinds)`` int64 matrix per greedy round and a chunked
  broadcast over the exhaustive choice matrix.  Benefits are computed
  with the same float64 operations in the same order as the reference,
  and every arg-max replicates the reference's first-wins tie-breaking,
  so results are exactly equal — enforced by the backend-equivalence
  fuzz tests and the ``selection_backend`` bench stage.

Backend choice is resolved lazily through a three-step chain (see
:func:`resolve_backend`): an explicit ``backend=`` argument wins, then a
library-pinned preference (``SILibrary(..., backend=...)``), then the
process default (:func:`set_default_backend`, else the
``REPRO_BACKEND`` environment variable, else ``"reference"``).
"""

from __future__ import annotations

import itertools
import os
import weakref
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any, Union

from .molecule import Molecule, supremum

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .library import SILibrary
    from .selection import ForecastedSI
    from .si import MoleculeImpl

#: Environment variable consulted for the process-default backend.
DEFAULT_BACKEND_ENV = "REPRO_BACKEND"

#: A backend name or an already-constructed backend instance.
BackendSpec = Union[str, "ComputeBackend"]

#: Stacked count vectors: one row per molecule, ordered like
#: ``AtomSpace.kinds``.
Rows = Sequence[Sequence[int]]


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run here (missing dependency)."""


# -- shared scoring helpers ---------------------------------------------------


def benefit(fsi: "ForecastedSI", impl: "MoleculeImpl | None") -> float:
    """Weighted cycles saved vs. pure software execution."""
    if impl is None:
        return 0.0
    saved = fsi.si.software_cycles - impl.cycles
    return fsi.expected_executions * max(saved, 0)


def demand(
    library: "SILibrary", chosen: Mapping[str, "MoleculeImpl | None"]
) -> Molecule:
    """Supremum of the chosen molecules, projected onto reconfigurable kinds."""
    molecules = [
        library.restricted_to_reconfigurable(impl.molecule)
        for impl in chosen.values()
        if impl is not None
    ]
    return supremum(molecules, space=library.space)


# -- the interface ------------------------------------------------------------


class ComputeBackend(ABC):
    """Batched lattice kernels behind selection and Pareto analysis.

    All ``Rows`` arguments are stacked count vectors (one row per
    molecule, components ordered like the owning ``AtomSpace``); the
    selection entry points receive domain objects because their inner
    loops are what the backends specialise.  Implementations must be
    stateless: one cached instance per name is shared process-wide.
    """

    #: Registry name; also what ``--backend`` and ``$REPRO_BACKEND`` take.
    name = "abstract"

    # -- batched lattice primitives --------------------------------------

    @abstractmethod
    def sup(self, rows: Rows, dim: int) -> tuple[int, ...]:
        """Component-wise max over ``rows`` (``dim`` zeros when empty)."""

    @abstractmethod
    def inf(self, rows: Rows) -> tuple[int, ...]:
        """Component-wise min over ``rows``; raises ``ValueError`` on empty."""

    @abstractmethod
    def residual(
        self, rows: Rows, available: Sequence[int]
    ) -> list[tuple[int, ...]]:
        """Per-row clamped subtraction ``max(row - available, 0)``."""

    @abstractmethod
    def determinants(self, rows: Rows) -> list[int]:
        """Per-row determinant ``|m| = sum(m_i)``."""

    @abstractmethod
    def pareto_mask(
        self, atoms: Sequence[int], cycles: Sequence[int]
    ) -> list[bool]:
        """Non-domination mask over ``(atoms, cycles)`` points.

        ``mask[i]`` is True iff no point ``j`` has ``atoms[j] <= atoms[i]``
        and ``cycles[j] <= cycles[i]`` with at least one strict
        inequality.  Exact duplicates never dominate each other, so all
        of them stay on the front.
        """

    # -- selection inner loops -------------------------------------------

    @abstractmethod
    def greedy_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
        loaded_rc: Molecule,
    ) -> tuple[dict[str, "MoleculeImpl | None"], int]:
        """The greedy marginal-gain scan of ``select_greedy``.

        Returns the chosen implementation per SI name (keys in request
        order) and the number of candidates considered.  ``loaded_rc``
        is the already-loaded molecule, reconfigurable projection taken
        by the caller.
        """

    @abstractmethod
    def exhaustive_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
    ) -> tuple[dict[str, "MoleculeImpl | None"], float, int]:
        """The full enumeration of ``select_exhaustive``.

        Returns the best choice (keys in request order), its total
        benefit, and the number of combinations considered.  Ties on
        benefit prefer fewer containers, then the earlier combination in
        ``itertools.product`` order.
        """


# -- the executable specification ---------------------------------------------


class ReferenceBackend(ComputeBackend):
    """Pure-python kernels: simple, dependency-free, and the oracle.

    Any other backend must reproduce these results exactly; the
    reference itself exists so the vectorized paths have a small,
    readable specification to be diffed against.
    """

    name = "reference"

    def sup(self, rows: Rows, dim: int) -> tuple[int, ...]:
        out = [0] * dim
        for row in rows:
            for i, c in enumerate(row):
                if c > out[i]:
                    out[i] = c
        return tuple(out)

    def inf(self, rows: Rows) -> tuple[int, ...]:
        rows = list(rows)
        if not rows:
            raise ValueError("infimum of an empty set is unbounded")
        out = list(rows[0])
        for row in rows[1:]:
            for i, c in enumerate(row):
                if c < out[i]:
                    out[i] = c
        return tuple(out)

    def residual(
        self, rows: Rows, available: Sequence[int]
    ) -> list[tuple[int, ...]]:
        return [
            tuple(max(o - m, 0) for o, m in zip(row, available))
            for row in rows
        ]

    def determinants(self, rows: Rows) -> list[int]:
        return [sum(row) for row in rows]

    def pareto_mask(
        self, atoms: Sequence[int], cycles: Sequence[int]
    ) -> list[bool]:
        mask = []
        for i in range(len(atoms)):
            dominated = any(
                atoms[j] <= atoms[i]
                and cycles[j] <= cycles[i]
                and (atoms[j] < atoms[i] or cycles[j] < cycles[i])
                for j in range(len(atoms))
                if j != i
            )
            mask.append(not dominated)
        return mask

    def greedy_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
        loaded_rc: Molecule,
    ) -> tuple[dict[str, "MoleculeImpl | None"], int]:
        chosen: dict[str, MoleculeImpl | None] = {
            r.si.name: None for r in requests
        }
        by_name = {r.si.name: r for r in requests}
        considered = 0
        baseline = library.baseline_molecule()

        def containers_for(d: Molecule) -> int:
            # Containers hold only the demand beyond the static baseline.
            return abs(d - baseline)

        while True:
            current_demand = demand(library, chosen)
            current_containers = containers_for(current_demand)
            best: tuple[float, float, str, MoleculeImpl] | None = None
            for name, fsi in by_name.items():
                current_gain = benefit(fsi, chosen[name])
                for impl in fsi.si.implementations:
                    considered += 1
                    gain = benefit(fsi, impl) - current_gain
                    if gain <= 0:
                        continue
                    trial = dict(chosen)
                    trial[name] = impl
                    new_demand = demand(library, trial)
                    new_containers = containers_for(new_demand)
                    if new_containers > container_budget:
                        continue
                    # Primary cost: container budget this upgrade consumes.
                    # An upgrade that shrinks (or holds) the supremum is
                    # free, not negative: clamping the denominator keeps a
                    # strictly beneficial, container-freeing swap scoring
                    # at least as high as a budget-neutral one.
                    extra_budget = new_containers - current_containers
                    score = gain / (max(extra_budget, 0) + 0.5)
                    # Secondary preference: fewer new rotations (reuse
                    # what is already loaded or demanded).
                    rotations = abs(new_demand - (current_demand | loaded_rc))
                    key = (score, -rotations)
                    if best is None or key > best[:2]:
                        best = (score, -rotations, name, impl)
            if best is None:
                break
            _, _, name, impl = best
            chosen[name] = impl
        return chosen, considered

    def exhaustive_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
    ) -> tuple[dict[str, "MoleculeImpl | None"], float, int]:
        baseline = library.baseline_molecule()
        option_lists: list[list[MoleculeImpl | None]] = [
            [None, *r.si.implementations] for r in requests
        ]
        best_choice: dict[str, MoleculeImpl | None] = {
            r.si.name: None for r in requests
        }
        best_benefit = 0.0
        best_containers = 0
        considered = 0
        for combo in itertools.product(*option_lists):
            considered += 1
            chosen = {r.si.name: impl for r, impl in zip(requests, combo)}
            d = demand(library, chosen)
            containers = abs(d - baseline)
            if containers > container_budget:
                continue
            combo_benefit = sum(
                benefit(r, impl) for r, impl in zip(requests, combo)
            )
            # Equal-benefit combos prefer fewer containers (then the
            # earlier enumeration), so the optimum is deterministic and
            # never wastes fabric.
            if combo_benefit > best_benefit or (
                combo_benefit == best_benefit
                and containers < best_containers
            ):
                best_benefit = combo_benefit
                best_containers = containers
                best_choice = chosen
        return best_choice, best_benefit, considered


# -- the vectorized fast path -------------------------------------------------


def _require_numpy() -> Any:
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy ships by default
        raise BackendUnavailableError(
            "the 'numpy' compute backend requires numpy "
            "(install the 'repro[numpy]' extra)"
        ) from exc
    return numpy


class NumpyBackend(ComputeBackend):
    """Vectorized kernels over stacked ``int64`` count matrices.

    Equivalence with :class:`ReferenceBackend` is exact, not
    approximate: candidate benefits enter the arrays as the same python
    floats the reference computes, scores use the same float64 add /
    divide, enumeration follows the same row-major order, and ties pick
    the same first-encountered winner.  Construction raises
    :class:`BackendUnavailableError` when numpy is not importable.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._np = _require_numpy()
        #: Per-library staging cache: libraries are immutable after
        #: construction, so their rc mask, baseline vector and candidate
        #: matrices (which depend only on SI structure, never on the
        #: per-call weights) are built once.  Weak keys keep dropped
        #: libraries collectable.
        self._staging: "weakref.WeakKeyDictionary[Any, dict[Any, Any]]" = (
            weakref.WeakKeyDictionary()
        )

    # -- batched lattice primitives --------------------------------------

    def sup(self, rows: Rows, dim: int) -> tuple[int, ...]:
        np = self._np
        rows = list(rows)
        if not rows:
            return (0,) * dim
        return tuple(
            int(c) for c in np.asarray(rows, dtype=np.int64).max(axis=0)
        )

    def inf(self, rows: Rows) -> tuple[int, ...]:
        np = self._np
        rows = list(rows)
        if not rows:
            raise ValueError("infimum of an empty set is unbounded")
        return tuple(
            int(c) for c in np.asarray(rows, dtype=np.int64).min(axis=0)
        )

    def residual(
        self, rows: Rows, available: Sequence[int]
    ) -> list[tuple[int, ...]]:
        np = self._np
        rows = list(rows)
        if not rows:
            return []
        stacked = np.asarray(rows, dtype=np.int64)
        left = stacked - np.asarray(available, dtype=np.int64)[None, :]
        np.maximum(left, 0, out=left)
        return [tuple(int(c) for c in row) for row in left]

    def determinants(self, rows: Rows) -> list[int]:
        np = self._np
        rows = list(rows)
        if not rows:
            return []
        return [
            int(s) for s in np.asarray(rows, dtype=np.int64).sum(axis=1)
        ]

    def pareto_mask(
        self, atoms: Sequence[int], cycles: Sequence[int]
    ) -> list[bool]:
        np = self._np
        if not len(atoms):
            return []
        a = np.asarray(atoms, dtype=np.int64)
        c = np.asarray(cycles, dtype=np.int64)
        # dominated[i] = any j: a[j] <= a[i], c[j] <= c[i], one strict.
        no_worse = (a[None, :] <= a[:, None]) & (c[None, :] <= c[:, None])
        strict = (a[None, :] < a[:, None]) | (c[None, :] < c[:, None])
        dominated = (no_worse & strict).any(axis=1)
        return [bool(not d) for d in dominated]

    # -- selection inner loops -------------------------------------------

    def _staged(self, library: "SILibrary") -> dict[Any, Any]:
        """The per-library staging cache (created on first use)."""
        cache = self._staging.get(library)
        if cache is None:
            np = self._np
            rc = set(library.catalogue.reconfigurable_names())
            cache = {
                "rc_mask": np.asarray(
                    [1 if k in rc else 0 for k in library.space.kinds],
                    dtype=np.int64,
                ),
                "baseline": np.asarray(
                    library.baseline_molecule().counts, dtype=np.int64
                ),
            }
            self._staging[library] = cache
        return cache

    def _vectors(self, library: "SILibrary") -> tuple[Any, Any]:
        """``(rc_mask, baseline)`` int64 vectors of one library."""
        cache = self._staged(library)
        return cache["rc_mask"], cache["baseline"]

    def _candidates(
        self, library: "SILibrary", requests: "Sequence[ForecastedSI]"
    ) -> tuple[list["MoleculeImpl"], Any, Any]:
        """``(impls, si_index_array, rc_rows)`` in reference scan order.

        Keyed by the request's SI-name tuple: molecule rows and SI
        indices depend only on the library's immutable SI structure, so
        repeated selections over the same forecast set (the runtime's
        steady state) skip the python-level array building entirely.
        Benefits depend on the per-call weights and are never cached.
        """
        cache = self._staged(library)
        key = ("candidates", tuple(r.si.name for r in requests))
        staged = cache.get(key)
        if staged is None:
            np = self._np
            rc_mask = cache["rc_mask"]
            cand_impls: list[MoleculeImpl] = []
            cand_si: list[int] = []
            for si_index, fsi in enumerate(requests):
                for impl in fsi.si.implementations:
                    cand_impls.append(impl)
                    cand_si.append(si_index)
            cand_rows = (
                np.asarray(
                    [impl.molecule.counts for impl in cand_impls],
                    dtype=np.int64,
                )
                * rc_mask[None, :]
            )
            staged = (
                cand_impls,
                np.asarray(cand_si, dtype=np.int64),
                cand_rows,
            )
            cache[key] = staged
        return staged

    def greedy_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
        loaded_rc: Molecule,
    ) -> tuple[dict[str, "MoleculeImpl | None"], int]:
        np = self._np
        requests = list(requests)
        names = [r.si.name for r in requests]
        chosen: dict[str, MoleculeImpl | None] = {n: None for n in names}
        if not requests:
            return chosen, 0
        rc_mask, baseline = self._vectors(library)
        loaded_vec = np.asarray(loaded_rc.counts, dtype=np.int64)

        # Candidate arrays in the reference enumeration order: for each
        # request (in turn), every implementation of its SI.  Benefits
        # are the same python-float products the reference computes,
        # stored verbatim in the float64 array.
        cand_impls, cand_si_arr, cand_rows = self._candidates(
            library, requests
        )
        n_cand = len(cand_impls)
        cand_ben = np.asarray(
            [
                benefit(requests[si_index], impl)
                for si_index, impl in zip(
                    (int(i) for i in cand_si_arr), cand_impls
                )
            ],
            dtype=np.float64,
        )

        n_si = len(requests)
        chosen_rows = np.zeros((n_si, len(library.space.kinds)), dtype=np.int64)
        chosen_ben = np.zeros(n_si, dtype=np.float64)
        chosen_cand = np.full(n_si, -1, dtype=np.int64)
        considered = 0
        while True:
            considered += n_cand
            current_demand = chosen_rows.max(axis=0)
            current_containers = np.maximum(
                current_demand - baseline, 0
            ).sum()
            # Leave-one-out column max: what the *other* SIs demand. With
            # per-column top and second values, a row equal to the top
            # falls back to the second; everyone else keeps the top.
            if n_si == 1:
                others = np.zeros_like(chosen_rows)
            else:
                ordered = np.sort(chosen_rows, axis=0)
                top, second = ordered[-1], ordered[-2]
                others = np.where(chosen_rows == top[None, :], second, top)
            new_demand = np.maximum(others[cand_si_arr], cand_rows)
            new_containers = np.maximum(
                new_demand - baseline[None, :], 0
            ).sum(axis=1)
            gains = cand_ben - chosen_ben[cand_si_arr]
            feasible = (gains > 0) & (new_containers <= container_budget)
            if not feasible.any():
                break
            extra = new_containers - current_containers
            score = gains / (np.maximum(extra, 0) + 0.5)
            combined = np.maximum(current_demand, loaded_vec)
            rotations = np.maximum(
                new_demand - combined[None, :], 0
            ).sum(axis=1)
            # First-wins lexicographic argmax over (score, -rotations)
            # among the feasible candidates — the reference's strict
            # tuple comparison.
            feas = np.flatnonzero(feasible)
            feas_score = score[feas]
            tied = feas[feas_score == feas_score.max()]
            tied_rot = rotations[tied]
            pick = int(tied[tied_rot == tied_rot.min()][0])
            si_index = int(cand_si_arr[pick])
            chosen_rows[si_index] = cand_rows[pick]
            chosen_ben[si_index] = cand_ben[pick]
            chosen_cand[si_index] = pick
        for si_index in range(n_si):
            cand_index = int(chosen_cand[si_index])
            if cand_index >= 0:
                chosen[names[si_index]] = cand_impls[cand_index]
        return chosen, considered

    #: Combinations materialised per exhaustive-enumeration chunk; bounds
    #: peak memory at chunk x kinds int64 regardless of library size.
    EXHAUSTIVE_CHUNK = 1 << 15

    def exhaustive_choose(
        self,
        library: "SILibrary",
        requests: "Sequence[ForecastedSI]",
        container_budget: int,
    ) -> tuple[dict[str, "MoleculeImpl | None"], float, int]:
        np = self._np
        requests = list(requests)
        if not requests:
            # product() of no option lists yields exactly one empty combo.
            return {}, 0.0, 1
        rc_mask, baseline = self._vectors(library)
        option_impls: list[list[MoleculeImpl | None]] = [
            [None, *r.si.implementations] for r in requests
        ]
        option_rows: list[Any] = []
        option_ben: list[Any] = []
        for fsi, options in zip(requests, option_impls):
            rows = np.zeros(
                (len(options), len(library.space.kinds)), dtype=np.int64
            )
            ben = np.zeros(len(options), dtype=np.float64)
            for j, impl in enumerate(options):
                if impl is not None:
                    rows[j] = (
                        np.asarray(impl.molecule.counts, dtype=np.int64)
                        * rc_mask
                    )
                    ben[j] = benefit(fsi, impl)
            option_rows.append(rows)
            option_ben.append(ben)
        shape = tuple(len(options) for options in option_impls)
        total = 1
        for size in shape:
            total *= size
        best_digits = (0,) * len(requests)
        best_benefit = 0.0
        best_containers = 0
        for start in range(0, total, self.EXHAUSTIVE_CHUNK):
            stop = min(start + self.EXHAUSTIVE_CHUNK, total)
            flat = np.arange(start, stop, dtype=np.int64)
            # C-order unravelling matches itertools.product enumeration.
            digits = np.unravel_index(flat, shape)
            demand_rows = np.zeros(
                (stop - start, len(library.space.kinds)), dtype=np.int64
            )
            benefits = np.zeros(stop - start, dtype=np.float64)
            for i in range(len(requests)):
                np.maximum(
                    demand_rows, option_rows[i][digits[i]], out=demand_rows
                )
                # Left-to-right accumulation mirrors the reference's
                # sum() over the combo, so the floats match exactly.
                benefits = benefits + option_ben[i][digits[i]]
            containers = np.maximum(
                demand_rows - baseline[None, :], 0
            ).sum(axis=1)
            ok = np.flatnonzero(containers <= container_budget)
            if not len(ok):
                continue
            ok_ben = benefits[ok]
            tied = ok[ok_ben == ok_ben.max()]
            tied_containers = containers[tied]
            pick = int(tied[tied_containers == tied_containers.min()][0])
            chunk_benefit = float(benefits[pick])
            chunk_containers = int(containers[pick])
            if chunk_benefit > best_benefit or (
                chunk_benefit == best_benefit
                and chunk_containers < best_containers
            ):
                best_benefit = chunk_benefit
                best_containers = chunk_containers
                best_digits = tuple(int(d[pick]) for d in digits)
        best_choice = {
            r.si.name: option_impls[i][best_digits[i]]
            for i, r in enumerate(requests)
        }
        return best_choice, best_benefit, total


# -- registry and resolution --------------------------------------------------


_REGISTRY: dict[str, type[ComputeBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    NumpyBackend.name: NumpyBackend,
}
_instances: dict[str, ComputeBackend] = {}
_default_spec: BackendSpec | None = None


def available_backends() -> tuple[str, ...]:
    """Registered backend names (availability is checked on first use)."""
    return tuple(_REGISTRY)


def get_backend(spec: BackendSpec) -> ComputeBackend:
    """Resolve a backend name to its shared instance.

    Instances pass through unchanged.  Unknown names raise
    ``ValueError``; a backend whose dependencies are missing raises
    :class:`BackendUnavailableError` on first construction.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    try:
        cls = _REGISTRY[spec]
    except (KeyError, TypeError):
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown compute backend {spec!r}; choose from {known}"
        ) from None
    instance = _instances.get(spec)
    if instance is None:
        instance = cls()
        _instances[spec] = instance
    return instance


def set_default_backend(spec: BackendSpec | None) -> None:
    """Pin the process-wide default backend (validated eagerly).

    ``None`` resets to the environment chain (``$REPRO_BACKEND``, then
    ``reference``).  The CLI ``--backend`` flag lands here.
    """
    global _default_spec
    if spec is not None:
        get_backend(spec)
    _default_spec = spec


def default_backend() -> ComputeBackend:
    """The process default backend.

    Resolution order: :func:`set_default_backend`, then the
    ``REPRO_BACKEND`` environment variable (read lazily, so test
    monkeypatching works), then ``reference``.  An invalid environment
    value fails loudly at first use rather than being silently ignored.
    """
    if _default_spec is not None:
        return get_backend(_default_spec)
    env = os.environ.get(DEFAULT_BACKEND_ENV)
    if env:
        return get_backend(env)
    return get_backend(ReferenceBackend.name)


def resolve_backend(
    spec: BackendSpec | None = None, library: "SILibrary | None" = None
) -> ComputeBackend:
    """Three-step resolution: explicit spec > library pin > process default."""
    if spec is not None:
        return get_backend(spec)
    if library is not None:
        pinned = getattr(library, "backend", None)
        if pinned is not None:
            return get_backend(pinned)
    return default_backend()
