"""Molecule vector algebra (paper section 3.1).

The paper models Molecules as vectors in ``N^n`` where ``n`` is the number
of available Atom kinds and component ``m_i`` is the number of instances
of Atom ``i`` required to implement the Molecule.  The structure
``(N^n, union, intersection, <=)`` is a complete lattice:

* ``m | o``   -- element-wise ``max`` (the paper's Meta-Molecule operator,
  written as a set-union symbol): the Atoms required to implement *both*
  ``m`` and ``o`` (not necessarily concurrently).
* ``m & o``   -- element-wise ``min``: Atoms collectively needed by both.
* ``m <= o``  -- component-wise order; reflexive, anti-symmetric and
  transitive, hence a partial order.
* ``sup(M)``  -- supremum: Atoms needed to implement *any* molecule in M.
* ``inf(M)``  -- infimum: Atoms needed by *all* molecules in M.
* ``abs(m)``  -- the determinant ``|m| = sum(m_i)``: total Atom count.
* ``o - m``   -- the residual (paper's subtraction-like operator): the
  minimum Meta-Molecule that still has to be loaded to implement ``o``
  given the Atoms of ``m`` are already available; clamped at zero.

Molecules only combine within one :class:`AtomSpace` (a fixed, ordered
universe of Atom kinds).  All values are validated to be non-negative
integers, and all operations return new immutable molecules.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from functools import reduce
from typing import Iterator


class AtomSpace:
    """An ordered universe of Atom kind names.

    Every :class:`Molecule` belongs to exactly one space; the space fixes
    the dimension ``n`` of the vector model and the meaning of each
    component.  Atom kinds are identified by name (e.g. ``"Transform"``).

    Parameters
    ----------
    kinds:
        Ordered atom-kind names.  Must be unique and non-empty strings.
    """

    __slots__ = ("_kinds", "_index")

    def __init__(self, kinds: Iterable[str]):
        kinds = tuple(kinds)
        if not kinds:
            raise ValueError("AtomSpace requires at least one atom kind")
        seen = set()
        for kind in kinds:
            if not isinstance(kind, str) or not kind:
                raise ValueError(f"atom kind must be a non-empty string, got {kind!r}")
            if kind in seen:
                raise ValueError(f"duplicate atom kind {kind!r}")
            seen.add(kind)
        self._kinds = kinds
        self._index = {kind: i for i, kind in enumerate(kinds)}

    @property
    def kinds(self) -> tuple[str, ...]:
        """The ordered atom-kind names."""
        return self._kinds

    @property
    def dimension(self) -> int:
        """The number of atom kinds ``n``."""
        return len(self._kinds)

    def index_of(self, kind: str) -> int:
        """Return the vector index of ``kind``; raise ``KeyError`` if unknown."""
        return self._index[kind]

    def __contains__(self, kind: object) -> bool:
        return kind in self._index

    def __len__(self) -> int:
        return len(self._kinds)

    def __iter__(self) -> Iterator[str]:
        return iter(self._kinds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomSpace):
            return NotImplemented
        return self._kinds == other._kinds

    def __hash__(self) -> int:
        return hash(self._kinds)

    def __repr__(self) -> str:
        return f"AtomSpace({list(self._kinds)!r})"

    # -- molecule constructors -------------------------------------------

    def zero(self) -> "Molecule":
        """The neutral element ``(0, ..., 0)`` of the union semigroup."""
        return Molecule(self, (0,) * self.dimension)

    def molecule(self, counts: Mapping[str, int] | Iterable[int]) -> "Molecule":
        """Build a molecule from a ``{kind: count}`` mapping or a count vector.

        Kinds absent from a mapping default to zero.
        """
        if isinstance(counts, Mapping):
            vector = [0] * self.dimension
            for kind, count in counts.items():
                vector[self.index_of(kind)] = count
            return Molecule(self, vector)
        return Molecule(self, counts)

    def unit(self, kind: str) -> "Molecule":
        """A molecule with exactly one instance of ``kind``."""
        return self.molecule({kind: 1})


class Molecule:
    """An immutable Atom-count vector in an :class:`AtomSpace`.

    Supports the full lattice algebra of the paper (see module docstring).
    Molecules compare, hash and combine by value; mixing spaces raises
    ``ValueError``.
    """

    __slots__ = ("_space", "_counts")

    def __init__(self, space: AtomSpace, counts: Iterable[int]):
        counts = tuple(int(c) for c in counts)
        if len(counts) != space.dimension:
            raise ValueError(
                f"expected {space.dimension} counts for {space!r}, got {len(counts)}"
            )
        if any(c < 0 for c in counts):
            raise ValueError(f"atom counts must be non-negative, got {counts}")
        self._space = space
        self._counts = counts

    # -- basic accessors ---------------------------------------------------

    @property
    def space(self) -> AtomSpace:
        """The atom space this molecule lives in."""
        return self._space

    @property
    def counts(self) -> tuple[int, ...]:
        """The raw count vector, ordered like ``space.kinds``."""
        return self._counts

    def count(self, kind: str) -> int:
        """Number of instances of atom ``kind`` this molecule requires."""
        return self._counts[self._space.index_of(kind)]

    def __getitem__(self, kind: str) -> int:
        return self.count(kind)

    def as_dict(self, *, skip_zero: bool = True) -> dict[str, int]:
        """Return ``{kind: count}``, omitting zero entries by default."""
        return {
            kind: count
            for kind, count in zip(self._space.kinds, self._counts)
            if count or not skip_zero
        }

    def kinds_used(self) -> tuple[str, ...]:
        """Atom kinds with a non-zero count, in space order."""
        return tuple(k for k, c in zip(self._space.kinds, self._counts) if c)

    def is_zero(self) -> bool:
        """True for the neutral element ``(0, ..., 0)``."""
        return not any(self._counts)

    # -- the paper's operators ----------------------------------------------

    def union(self, other: "Molecule") -> "Molecule":
        """Meta-Molecule ``p_i = max(m_i, o_i)`` (paper's set-union operator)."""
        self._check_space(other)
        return Molecule(self._space, map(max, self._counts, other._counts))

    def intersection(self, other: "Molecule") -> "Molecule":
        """Meta-Molecule ``p_i = min(m_i, o_i)``."""
        self._check_space(other)
        return Molecule(self._space, map(min, self._counts, other._counts))

    def residual(self, available: "Molecule") -> "Molecule":
        """Atoms still missing to implement ``self`` given ``available``.

        This is the paper's operator ``p_i = max(o_i - m_i, 0)`` with
        ``o = self`` and ``m = available``: the minimum set of Atoms that
        additionally have to be offered (loaded) to implement ``self``.
        """
        self._check_space(available)
        return Molecule(
            self._space,
            (max(o - m, 0) for o, m in zip(self._counts, available._counts)),
        )

    def determinant(self) -> int:
        """``|m| = sum(m_i)``: the total number of Atom instances required."""
        return sum(self._counts)

    def scaled(self, factor: int) -> "Molecule":
        """Component-wise multiple ``factor * m`` (``factor >= 0``)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Molecule(self._space, (c * factor for c in self._counts))

    def plus(self, other: "Molecule") -> "Molecule":
        """Component-wise sum (used e.g. to total a fabric's loaded atoms)."""
        self._check_space(other)
        return Molecule(self._space, (a + b for a, b in zip(self._counts, other._counts)))

    def dominates(self, other: "Molecule") -> bool:
        """True iff ``other <= self`` (self offers at least other's atoms)."""
        return other <= self

    def fits_within(self, available: "Molecule") -> bool:
        """True iff ``self <= available``: implementable without loading."""
        return self <= available

    def restricted_to(self, kinds: Iterable[str]) -> "Molecule":
        """Zero out every component not in ``kinds`` (projection)."""
        keep = set(kinds)
        return Molecule(
            self._space,
            (c if k in keep else 0 for k, c in zip(self._space.kinds, self._counts)),
        )

    # -- operator sugar ------------------------------------------------------

    def __or__(self, other: "Molecule") -> "Molecule":
        return self.union(other)

    def __and__(self, other: "Molecule") -> "Molecule":
        return self.intersection(other)

    def __sub__(self, other: "Molecule") -> "Molecule":
        return self.residual(other)

    def __add__(self, other: "Molecule") -> "Molecule":
        return self.plus(other)

    def __abs__(self) -> int:
        return self.determinant()

    def __le__(self, other: "Molecule") -> bool:
        self._check_space(other)
        return all(a <= b for a, b in zip(self._counts, other._counts))

    def __lt__(self, other: "Molecule") -> bool:
        return self <= other and self._counts != other._counts

    def __ge__(self, other: "Molecule") -> bool:
        self._check_space(other)
        return all(a >= b for a, b in zip(self._counts, other._counts))

    def __gt__(self, other: "Molecule") -> bool:
        return self >= other and self._counts != other._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Molecule):
            return NotImplemented
        return self._space == other._space and self._counts == other._counts

    def __hash__(self) -> int:
        return hash((self._space, self._counts))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={c}" for k, c in self.as_dict().items())
        return f"Molecule({inner or '0'})"

    # -- internals -----------------------------------------------------------

    def _check_space(self, other: "Molecule") -> None:
        if self._space != other._space:
            raise ValueError(
                f"molecules live in different atom spaces: "
                f"{self._space!r} vs {other._space!r}"
            )


def _stacked(molecules: list[Molecule]) -> tuple[AtomSpace, list[tuple[int, ...]]]:
    """Common space and stacked count rows of a non-empty molecule list."""
    space = molecules[0].space
    for molecule in molecules[1:]:
        molecules[0]._check_space(molecule)
    return space, [m.counts for m in molecules]


def supremum(
    molecules: Iterable[Molecule],
    *,
    space: AtomSpace | None = None,
    backend: object | None = None,
) -> Molecule:
    """``sup(M)``: the Meta-Molecule of Atoms needed for *any* molecule in M.

    For an empty iterable a ``space`` is required and the zero molecule
    (the supremum of the empty set in the lattice) is returned.  With
    ``backend`` given, the component-wise max runs as one batched kernel
    on that compute backend (see :mod:`repro.core.backend`) instead of a
    pairwise reduction — same result, useful for large stacks.
    """
    molecules = list(molecules)
    if not molecules:
        if space is None:
            raise ValueError("supremum of an empty set needs an explicit space")
        return space.zero()
    if backend is not None:
        from .backend import resolve_backend

        common, rows = _stacked(molecules)
        return Molecule(
            common, resolve_backend(backend).sup(rows, common.dimension)
        )
    return reduce(Molecule.union, molecules)


def infimum(
    molecules: Iterable[Molecule], *, backend: object | None = None
) -> Molecule:
    """``inf(M)``: Atoms collectively needed by *all* molecules of M.

    The infimum of an empty set is undefined here (it would be the top
    element, which is unbounded in ``N^n``); raises ``ValueError``.
    With ``backend`` given, runs as one batched kernel like
    :func:`supremum`.
    """
    molecules = list(molecules)
    if not molecules:
        raise ValueError("infimum of an empty molecule set is unbounded")
    if backend is not None:
        from .backend import resolve_backend

        common, rows = _stacked(molecules)
        return Molecule(common, resolve_backend(backend).inf(rows))
    return reduce(Molecule.intersection, molecules)
