"""JSON (de)serialisation of atom catalogues and SI libraries.

A molecule catalogue is a design-time artefact the tool-chain ships with
an application binary; this module gives it a stable on-disk form so
libraries survive across processes and can be exchanged (e.g. the
auto-generated catalogues of :mod:`repro.core.molgen`).
"""

from __future__ import annotations

import json
from pathlib import Path

from .atom import AtomCatalogue, AtomKind
from .library import SILibrary
from .si import MoleculeImpl, SpecialInstruction

FORMAT_VERSION = 1


def catalogue_to_dict(catalogue: AtomCatalogue) -> dict:
    return {
        "kinds": [
            {
                "name": k.name,
                "reconfigurable": k.reconfigurable,
                "bitstream_bytes": k.bitstream_bytes,
                "slices": k.slices,
                "luts": k.luts,
                "latency_cycles": k.latency_cycles,
                "baseline": k.baseline,
                "description": k.description,
            }
            for k in catalogue
        ]
    }


def catalogue_from_dict(data: dict) -> AtomCatalogue:
    try:
        kinds = [AtomKind(**entry) for entry in data["kinds"]]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed catalogue data: {exc}") from exc
    return AtomCatalogue.of(kinds)


def library_to_dict(library: SILibrary) -> dict:
    """The full library as plain JSON-compatible data."""
    return {
        "format": FORMAT_VERSION,
        "catalogue": catalogue_to_dict(library.catalogue),
        "sis": [
            {
                "name": si.name,
                "software_cycles": si.software_cycles,
                "description": si.description,
                "implementations": [
                    {
                        "counts": impl.molecule.as_dict(),
                        "cycles": impl.cycles,
                        "label": impl.label,
                    }
                    for impl in si.implementations
                ],
            }
            for si in library
        ],
    }


def library_from_dict(data: dict) -> SILibrary:
    """Rebuild a library; raises ``ValueError`` on malformed data."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported library format {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    catalogue = catalogue_from_dict(data["catalogue"])
    space = catalogue.space
    sis = []
    for entry in data["sis"]:
        try:
            impls = [
                MoleculeImpl(
                    space.molecule(i["counts"]),
                    i["cycles"],
                    label=i.get("label", ""),
                )
                for i in entry["implementations"]
            ]
            sis.append(
                SpecialInstruction(
                    entry["name"],
                    space,
                    entry["software_cycles"],
                    impls,
                    description=entry.get("description", ""),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed SI entry: {exc}") from exc
    return SILibrary(catalogue, sis)


def save_library(library: SILibrary, path: str | Path) -> Path:
    """Write the library as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(library_to_dict(library), indent=2) + "\n")
    return path


def load_library(path: str | Path) -> SILibrary:
    """Read a library written by :func:`save_library`."""
    return library_from_dict(json.loads(Path(path).read_text()))
