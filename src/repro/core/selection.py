"""Run-time Molecule selection (paper section 5, task b).

Given the currently forecasted SIs (with expected execution counts), the
Atom-Container budget and the Atoms already loaded, pick one hardware
molecule per SI (or none, i.e. software execution) so that the weighted
cycle savings are maximised while the *supremum* of the chosen molecules
fits the budget.  Using the supremum — not the sum — is the heart of the
paper's resource sharing: an Atom instance loaded in a container serves
every SI whose molecule needs it (Fig. 6, T3).

Two algorithms are provided:

* :func:`select_greedy` — the production path: start from nothing and
  repeatedly apply the upgrade with the best marginal gain per additional
  container, honouring already-loaded atoms (their containers are sunk
  cost, so reusing them is free).
* :func:`select_exhaustive` — optimal reference for small libraries,
  used by tests and the selection ablation bench.

Both delegate their inner scoring/enumeration loops to a pluggable
:class:`~repro.core.backend.ComputeBackend` (``backend=`` argument; see
:mod:`repro.core.backend` for the resolution chain) — the pure-python
``reference`` backend is the specification, the ``numpy`` backend the
vectorized fast path, and they produce identical ``SelectionResult``s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from .backend import BackendSpec, benefit, demand, resolve_backend
from .library import SILibrary
from .molecule import Molecule
from .si import MoleculeImpl, SpecialInstruction

#: Backwards-compatible aliases — the scoring helpers moved to
#: :mod:`repro.core.backend` so every backend shares one definition.
_benefit = benefit
_demand = demand


@dataclass(frozen=True)
class ForecastedSI:
    """One SI requested by the forecast, with its expected usage weight."""

    si: SpecialInstruction
    expected_executions: float

    def __post_init__(self) -> None:
        if self.expected_executions < 0:
            raise ValueError("expected executions cannot be negative")


@dataclass
class SelectionResult:
    """Outcome of a molecule selection round."""

    chosen: dict[str, MoleculeImpl | None]
    demand: Molecule
    containers_used: int
    total_benefit: float
    considered: int = 0
    rejected_over_budget: dict[str, bool] = field(default_factory=dict)

    def molecule_for(self, si_name: str) -> MoleculeImpl | None:
        return self.chosen.get(si_name)


def _checked_requests(
    requests: Iterable[ForecastedSI],
) -> list[ForecastedSI]:
    """Materialise ``requests`` and reject duplicate SI names.

    Duplicates used to be silently collapsed by the greedy path while the
    exhaustive path double-counted their benefit; neither behaviour is
    meaningful, so both now fail loudly (callers aggregate weights per SI
    — see ``RisppRuntime._replan``).
    """
    requests = list(requests)
    seen: set[str] = set()
    for request in requests:
        name = request.si.name
        if name in seen:
            raise ValueError(f"duplicate selection request for SI {name!r}")
        seen.add(name)
    return requests


def _result(
    library: SILibrary,
    requests: list[ForecastedSI],
    chosen: dict[str, MoleculeImpl | None],
    considered: int,
    *,
    total: float | None = None,
) -> SelectionResult:
    """Assemble the shared result surface from a backend's raw choice."""
    by_name = {r.si.name: r for r in requests}
    chosen_demand = demand(library, chosen)
    if total is None:
        total = sum(
            benefit(by_name[name], impl) for name, impl in chosen.items()
        )
    return SelectionResult(
        chosen=chosen,
        demand=chosen_demand,
        containers_used=abs(chosen_demand - library.baseline_molecule()),
        total_benefit=total,
        considered=considered,
    )


def select_greedy(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    container_budget: int,
    *,
    loaded: Molecule | None = None,
    backend: BackendSpec | None = None,
) -> SelectionResult:
    """Greedy marginal-gain molecule selection.

    Upgrades are scored by weighted cycle savings per *container budget*
    consumed (the marginal determinant growth of the demand supremum), so
    cheap shared molecules are picked before large exclusive ones; an
    upgrade that shrinks or holds the supremum is treated as budget-free,
    never penalised.  Among equal-score upgrades the one needing fewer
    new rotations wins: ``loaded`` (reconfigurable projection is taken
    internally) describes Atoms already sitting in containers, and
    reusing them is free — this minimises the number of rotations, a
    stated goal of the paper.

    ``backend`` overrides the compute backend for this call (name or
    instance); otherwise the library pin or process default applies.
    """
    if container_budget < 0:
        raise ValueError("container budget cannot be negative")
    requests = _checked_requests(requests)
    loaded_rc = (
        library.restricted_to_reconfigurable(loaded)
        if loaded is not None
        else library.space.zero()
    )
    chosen, considered = resolve_backend(backend, library).greedy_choose(
        library, requests, container_budget, loaded_rc
    )
    return _result(library, requests, chosen, considered)


def select_exhaustive(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    container_budget: int,
    *,
    loaded: Molecule | None = None,
    backend: BackendSpec | None = None,
) -> SelectionResult:
    """Optimal selection by enumerating all per-SI implementation choices.

    Exponential in the number of SIs — intended for validation and for the
    greedy-vs-optimal ablation, not for the run-time path.  ``loaded`` is
    accepted for interface parity with :func:`select_greedy`; the optimal
    choice does not depend on it (reuse only affects rotation effort, not
    the achievable benefit).  Equal-benefit combinations prefer fewer
    containers, then the earlier enumeration order, so the reported
    optimum is deterministic across backends.
    """
    if container_budget < 0:
        raise ValueError("container budget cannot be negative")
    requests = _checked_requests(requests)
    chosen, total, considered = resolve_backend(
        backend, library
    ).exhaustive_choose(library, requests, container_budget)
    return _result(library, requests, chosen, considered, total=total)


def upgrade_path(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    max_containers: int,
    *,
    loaded: Molecule | None = None,
    backend: BackendSpec | None = None,
) -> list[SelectionResult]:
    """Selection results for every container budget ``0..max_containers``.

    Materialises the dynamic trade-off of Fig. 13: as the budget grows
    the selected molecules walk along the Pareto fronts, and the walk
    never regresses — greedy selection alone is not guaranteed monotone
    in the budget (a larger budget can bait it into a worse local
    optimum), so a budget whose fresh selection scores below its
    predecessor's carries the predecessor forward (still feasible: it
    used at most the smaller budget).
    """
    requests = list(requests)
    path: list[SelectionResult] = []
    for budget in range(max_containers + 1):
        result = select_greedy(
            library, requests, budget, loaded=loaded, backend=backend
        )
        if path and result.total_benefit < path[-1].total_benefit:
            result = path[-1]
        path.append(result)
    return path
