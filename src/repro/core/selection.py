"""Run-time Molecule selection (paper section 5, task b).

Given the currently forecasted SIs (with expected execution counts), the
Atom-Container budget and the Atoms already loaded, pick one hardware
molecule per SI (or none, i.e. software execution) so that the weighted
cycle savings are maximised while the *supremum* of the chosen molecules
fits the budget.  Using the supremum — not the sum — is the heart of the
paper's resource sharing: an Atom instance loaded in a container serves
every SI whose molecule needs it (Fig. 6, T3).

Two algorithms are provided:

* :func:`select_greedy` — the production path: start from nothing and
  repeatedly apply the upgrade with the best marginal gain per additional
  container, honouring already-loaded atoms (their containers are sunk
  cost, so reusing them is free).
* :func:`select_exhaustive` — optimal reference for small libraries,
  used by tests and the selection ablation bench.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from .library import SILibrary
from .molecule import Molecule, supremum
from .si import MoleculeImpl, SpecialInstruction


@dataclass(frozen=True)
class ForecastedSI:
    """One SI requested by the forecast, with its expected usage weight."""

    si: SpecialInstruction
    expected_executions: float

    def __post_init__(self) -> None:
        if self.expected_executions < 0:
            raise ValueError("expected executions cannot be negative")


@dataclass
class SelectionResult:
    """Outcome of a molecule selection round."""

    chosen: dict[str, MoleculeImpl | None]
    demand: Molecule
    containers_used: int
    total_benefit: float
    considered: int = 0
    rejected_over_budget: dict[str, bool] = field(default_factory=dict)

    def molecule_for(self, si_name: str) -> MoleculeImpl | None:
        return self.chosen.get(si_name)


def _benefit(fsi: ForecastedSI, impl: MoleculeImpl | None) -> float:
    """Weighted cycles saved vs. pure software execution."""
    if impl is None:
        return 0.0
    saved = fsi.si.software_cycles - impl.cycles
    return fsi.expected_executions * max(saved, 0)


def _demand(
    library: SILibrary, chosen: Mapping[str, MoleculeImpl | None]
) -> Molecule:
    """Supremum of the chosen molecules, projected onto reconfigurable kinds."""
    molecules = [
        library.restricted_to_reconfigurable(impl.molecule)
        for impl in chosen.values()
        if impl is not None
    ]
    return supremum(molecules, space=library.space)


def select_greedy(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    container_budget: int,
    *,
    loaded: Molecule | None = None,
) -> SelectionResult:
    """Greedy marginal-gain molecule selection.

    Upgrades are scored by weighted cycle savings per *container budget*
    consumed (the marginal determinant growth of the demand supremum), so
    cheap shared molecules are picked before large exclusive ones.  Among
    equal-score upgrades the one needing fewer new rotations wins:
    ``loaded`` (reconfigurable projection is taken internally) describes
    Atoms already sitting in containers, and reusing them is free — this
    minimises the number of rotations, a stated goal of the paper.
    """
    if container_budget < 0:
        raise ValueError("container budget cannot be negative")
    requests = list(requests)
    loaded_rc = (
        library.restricted_to_reconfigurable(loaded)
        if loaded is not None
        else library.space.zero()
    )

    chosen: dict[str, MoleculeImpl | None] = {r.si.name: None for r in requests}
    by_name = {r.si.name: r for r in requests}
    considered = 0
    baseline = library.baseline_molecule()

    def containers_for(demand: Molecule) -> int:
        # Containers hold only the demand beyond the static baseline;
        # budget is the number of containers available for this round.
        return abs(demand - baseline)

    while True:
        current_demand = _demand(library, chosen)
        current_containers = containers_for(current_demand)
        best: tuple[float, float, str, MoleculeImpl] | None = None
        for name, fsi in by_name.items():
            current_impl = chosen[name]
            current_gain = _benefit(fsi, current_impl)
            for impl in fsi.si.implementations:
                considered += 1
                gain = _benefit(fsi, impl) - current_gain
                if gain <= 0:
                    continue
                trial = dict(chosen)
                trial[name] = impl
                new_demand = _demand(library, trial)
                new_containers = containers_for(new_demand)
                if new_containers > container_budget:
                    continue
                # Primary cost: container budget this upgrade consumes.
                extra_budget = new_containers - current_containers
                score = gain / (extra_budget + 0.5)
                # Secondary preference: fewer new rotations (reuse what is
                # already loaded or demanded).
                rotations = abs(new_demand - (current_demand | loaded_rc))
                key = (score, -rotations)
                if best is None or key > best[:2]:
                    best = (score, -rotations, name, impl)
        if best is None:
            break
        _, _, name, impl = best
        chosen[name] = impl

    demand = _demand(library, chosen)
    total = sum(_benefit(by_name[n], impl) for n, impl in chosen.items())
    return SelectionResult(
        chosen=chosen,
        demand=demand,
        containers_used=abs(demand - baseline),
        total_benefit=total,
        considered=considered,
    )


def select_exhaustive(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    container_budget: int,
    *,
    loaded: Molecule | None = None,
) -> SelectionResult:
    """Optimal selection by enumerating all per-SI implementation choices.

    Exponential in the number of SIs — intended for validation and for the
    greedy-vs-optimal ablation, not for the run-time path.  ``loaded`` is
    accepted for interface parity with :func:`select_greedy`; the optimal
    choice does not depend on it (reuse only affects rotation effort, not
    the achievable benefit).
    """
    if container_budget < 0:
        raise ValueError("container budget cannot be negative")
    requests = list(requests)
    baseline = library.baseline_molecule()
    option_lists: list[list[MoleculeImpl | None]] = [
        [None, *r.si.implementations] for r in requests
    ]
    best_choice: dict[str, MoleculeImpl | None] = {
        r.si.name: None for r in requests
    }
    best_benefit = 0.0
    considered = 0
    for combo in itertools.product(*option_lists):
        considered += 1
        chosen = {r.si.name: impl for r, impl in zip(requests, combo)}
        demand = _demand(library, chosen)
        if abs(demand - baseline) > container_budget:
            continue
        benefit = sum(
            _benefit(r, impl) for r, impl in zip(requests, combo)
        )
        if benefit > best_benefit:
            best_benefit = benefit
            best_choice = chosen
    demand = _demand(library, best_choice)
    return SelectionResult(
        chosen=best_choice,
        demand=demand,
        containers_used=abs(demand - baseline),
        total_benefit=best_benefit,
        considered=considered,
    )


def upgrade_path(
    library: SILibrary,
    requests: Iterable[ForecastedSI],
    max_containers: int,
    *,
    loaded: Molecule | None = None,
) -> list[SelectionResult]:
    """Selection results for every container budget ``0..max_containers``.

    Materialises the dynamic trade-off of Fig. 13: as the budget grows the
    selected molecules walk along the Pareto fronts.
    """
    requests = list(requests)
    return [
        select_greedy(library, requests, budget, loaded=loaded)
        for budget in range(max_containers + 1)
    ]
