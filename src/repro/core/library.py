"""SI library: the architecture's catalogue of Atoms and Special Instructions.

An :class:`SILibrary` ties together one :class:`~repro.core.atom.AtomCatalogue`
and the Special Instructions built on top of it.  It is the unit shipped
with an application (the H.264 case-study library lives in
``repro.apps.h264.sis``) and the object the run-time manager and the
compile-time forecast pipeline both consume.
"""

from __future__ import annotations

from collections.abc import Iterable

from .atom import AtomCatalogue
from .molecule import AtomSpace, Molecule, supremum
from .si import SpecialInstruction


class SILibrary:
    """A named collection of Special Instructions over one atom catalogue.

    ``backend`` optionally pins a compute backend (a name such as
    ``"numpy"`` or an instance) for the selection/Pareto kernels run over
    this library; it is stored as given and resolved lazily on each use,
    so an unavailable backend only fails when actually exercised.  When
    ``None``, the process default applies (see :mod:`repro.core.backend`).
    """

    def __init__(
        self,
        catalogue: AtomCatalogue,
        sis: Iterable[SpecialInstruction],
        *,
        backend: "str | object | None" = None,
    ):
        self.catalogue = catalogue
        self.space: AtomSpace = catalogue.space
        self.backend = backend
        self._sis: dict[str, SpecialInstruction] = {}
        for si in sis:
            if si.space != self.space:
                raise ValueError(
                    f"SI {si.name!r} was built over a different atom space"
                )
            if si.name in self._sis:
                raise ValueError(f"duplicate SI {si.name!r}")
            self._sis[si.name] = si

    # -- lookups -------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._sis

    def __iter__(self):
        return iter(self._sis.values())

    def __len__(self) -> int:
        return len(self._sis)

    def get(self, name: str) -> SpecialInstruction:
        """Look up an SI by name; raises ``KeyError`` if unknown."""
        return self._sis[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._sis)

    # -- aggregate queries -----------------------------------------------------

    def supremum(self) -> Molecule:
        """Atoms needed to offer every molecule of every SI concurrently...

        ...in the Meta-Molecule sense: the component-wise max over all
        hardware molecules in the library.
        """
        return supremum(
            (m for si in self for m in si.molecules()), space=self.space
        )

    def shared_atom_kinds(self) -> dict[str, tuple[str, ...]]:
        """Map each atom kind to the SIs whose molecules use it.

        This quantifies the paper's reusability argument (Fig. 2): one
        ``Transform`` atom serves HT_4x4, DCT_4x4, SATD_4x4 and HT_2x2.
        """
        users: dict[str, list[str]] = {kind: [] for kind in self.space.kinds}
        for si in self:
            used = set()
            for molecule in si.molecules():
                used.update(molecule.kinds_used())
            for kind in sorted(used):
                users[kind].append(si.name)
        return {kind: tuple(names) for kind, names in users.items()}

    def restricted_to_reconfigurable(self, molecule: Molecule) -> Molecule:
        """Project a molecule onto the reconfigurable atom kinds.

        Static atoms (``Load``/``Add``/``Store`` in the case study) are
        always available and never occupy Atom Containers; resource
        accounting therefore only considers the reconfigurable components.
        """
        return molecule.restricted_to(self.catalogue.reconfigurable_names())

    def baseline_molecule(self) -> Molecule:
        """Reconfigurable atoms the static fabric provides for free.

        In the case study a single ``Load`` lane is built into the static
        data path; molecules only occupy containers for atoms *beyond*
        this baseline.
        """
        return self.space.molecule(self.catalogue.baseline_counts())

    def container_demand(self, molecule: Molecule) -> int:
        """Number of Atom Containers ``molecule`` occupies.

        Static kinds never occupy containers; reconfigurable kinds occupy
        one container per instance beyond the static baseline.
        """
        needed = self.restricted_to_reconfigurable(molecule)
        return abs(needed - self.baseline_molecule())
