"""Resource-constrained dataflow scheduling of Atom operations.

A Molecule fixes *how many instances* of each Atom kind an SI
implementation may use; the latency of the SI then follows from
scheduling the SI's atomic-operation dataflow onto those instances
(spatial vs. temporal execution, paper section 3 / Fig. 2: e.g. one
HT_4x4 needs 4 ``Transform`` and 4 ``Pack`` executions which can run in
parallel, sequentially, or mixed).

This module provides the dataflow description and a classic
list scheduler.  It is used to cross-check the cycle numbers of the
Table 2 molecule catalogue and to derive latencies for *new* molecules
that the published catalogue does not contain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from .molecule import Molecule


@dataclass(frozen=True)
class AtomOp:
    """One atomic operation in an SI's dataflow graph.

    Parameters
    ----------
    op_id:
        Unique identifier within the dataflow.
    kind:
        Atom kind executing this operation.
    deps:
        ``op_id``s whose results this operation consumes.
    latency:
        Execution latency of this operation in cycles.
    """

    op_id: str
    kind: str
    deps: tuple[str, ...] = ()
    latency: int = 1

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("operation latency must be at least one cycle")


class Dataflow:
    """An acyclic graph of :class:`AtomOp` describing one SI execution."""

    def __init__(self, ops: Iterable[AtomOp]):
        self._ops: dict[str, AtomOp] = {}
        for op in ops:
            if op.op_id in self._ops:
                raise ValueError(f"duplicate op id {op.op_id!r}")
            self._ops[op.op_id] = op
        for op in self._ops.values():
            for dep in op.deps:
                if dep not in self._ops:
                    raise ValueError(f"op {op.op_id!r} depends on unknown {dep!r}")
        self._order = self._topological_order()

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops.values())

    @property
    def ops(self) -> dict[str, AtomOp]:
        return dict(self._ops)

    def executions_per_kind(self) -> dict[str, int]:
        """How many operations of each atom kind one SI execution issues."""
        counts: dict[str, int] = {}
        for op in self._ops.values():
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def _topological_order(self) -> list[str]:
        indegree = {op_id: len(op.deps) for op_id, op in self._ops.items()}
        consumers: dict[str, list[str]] = {op_id: [] for op_id in self._ops}
        for op in self._ops.values():
            for dep in op.deps:
                consumers[dep].append(op.op_id)
        ready = sorted(op_id for op_id, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            op_id = ready.pop(0)
            order.append(op_id)
            for consumer in consumers[op_id]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
            ready.sort()
        if len(order) != len(self._ops):
            raise ValueError("dataflow contains a cycle")
        return order

    def critical_path_cycles(self) -> int:
        """Latency with unlimited atom instances (the spatial optimum)."""
        finish: dict[str, int] = {}
        for op_id in self._order:
            op = self._ops[op_id]
            start = max((finish[d] for d in op.deps), default=0)
            finish[op_id] = start + op.latency
        return max(finish.values(), default=0)


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one operation on one atom instance."""

    op_id: str
    kind: str
    instance: int
    start: int
    finish: int


@dataclass
class Schedule:
    """Result of list-scheduling a dataflow onto a molecule's instances."""

    makespan: int
    placements: list[ScheduledOp] = field(default_factory=list)

    def by_instance(self) -> dict[tuple[str, int], list[ScheduledOp]]:
        lanes: dict[tuple[str, int], list[ScheduledOp]] = {}
        for p in self.placements:
            lanes.setdefault((p.kind, p.instance), []).append(p)
        for lane in lanes.values():
            lane.sort(key=lambda p: p.start)
        return lanes


def list_schedule(
    dataflow: Dataflow,
    molecule: Molecule,
    *,
    unconstrained_kinds: Iterable[str] = (),
    issue_overhead: int = 0,
) -> Schedule:
    """Schedule ``dataflow`` onto the atom instances of ``molecule``.

    Classic longest-path-priority list scheduling: operations become ready
    when their dependencies finished; among ready operations those with the
    longest downstream critical path are placed first on the earliest-free
    instance of their kind.

    Parameters
    ----------
    unconstrained_kinds:
        Atom kinds treated as unlimited (static-fabric helpers such as
        register-file reads).
    issue_overhead:
        Fixed pipeline fill/drain cycles added to the makespan (models the
        SI issue logic of the core).

    Raises ``ValueError`` when the molecule offers zero instances of a
    constrained kind that the dataflow needs.
    """
    unconstrained = set(unconstrained_kinds)
    needed = dataflow.executions_per_kind()
    for kind, _count in needed.items():
        if kind in unconstrained:
            continue
        if molecule.count(kind) < 1:
            raise ValueError(
                f"molecule offers no {kind!r} instance but the dataflow needs one"
            )

    # Downstream critical-path priority per op.
    consumers: dict[str, list[str]] = {op.op_id: [] for op in dataflow}
    for op in dataflow:
        for dep in op.deps:
            consumers[dep].append(op.op_id)
    priority: dict[str, int] = {}

    def downstream(op_id: str) -> int:
        if op_id in priority:
            return priority[op_id]
        op = dataflow.ops[op_id]
        tail = max((downstream(c) for c in consumers[op_id]), default=0)
        priority[op_id] = op.latency + tail
        return priority[op_id]

    for op in dataflow:
        downstream(op.op_id)

    instance_free: dict[str, list[int]] = {}
    for kind in needed:
        slots = needed[kind] if kind in unconstrained else molecule.count(kind)
        instance_free[kind] = [0] * slots

    finish: dict[str, int] = {}
    placements: list[ScheduledOp] = []
    pending = {op.op_id for op in dataflow}
    while pending:
        ready = [
            op_id
            for op_id in sorted(pending)
            if all(dep in finish for dep in dataflow.ops[op_id].deps)
        ]
        ready.sort(key=lambda op_id: (-priority[op_id], op_id))
        placed_any = False
        for op_id in ready:
            op = dataflow.ops[op_id]
            data_ready = max((finish[d] for d in op.deps), default=0)
            lanes = instance_free[op.kind]
            instance = min(range(len(lanes)), key=lambda i: lanes[i])
            start = max(data_ready, lanes[instance])
            end = start + op.latency
            lanes[instance] = end
            finish[op_id] = end
            placements.append(
                ScheduledOp(op_id, op.kind, instance, start, end)
            )
            pending.discard(op_id)
            placed_any = True
        if not placed_any:  # pragma: no cover - guarded by topological check
            raise RuntimeError("scheduler deadlock on an acyclic dataflow")

    makespan = max(finish.values(), default=0) + issue_overhead
    return Schedule(makespan=makespan, placements=placements)


def estimate_cycles(
    dataflow: Dataflow,
    molecule: Molecule,
    *,
    unconstrained_kinds: Iterable[str] = (),
    issue_overhead: int = 0,
) -> int:
    """Shorthand for the makespan of :func:`list_schedule`."""
    return list_schedule(
        dataflow,
        molecule,
        unconstrained_kinds=unconstrained_kinds,
        issue_overhead=issue_overhead,
    ).makespan


def layered_dataflow(
    stages: list[tuple[str, int, int]], *, fan_in: bool = True
) -> Dataflow:
    """Build a layered dataflow: ``stages = [(kind, executions, latency)]``.

    Stage ``k+1`` operations depend on stage ``k``.  With ``fan_in`` each
    next-stage op depends on a balanced slice of the previous stage
    (matching e.g. 4 Transforms feeding 4 Packs feeding 1 SATD reduction);
    otherwise every next-stage op depends on *all* previous-stage ops.
    """
    ops: list[AtomOp] = []
    prev_ids: list[str] = []
    for stage_idx, (kind, executions, latency) in enumerate(stages):
        if executions < 1:
            raise ValueError("each stage needs at least one execution")
        stage_ids = [f"s{stage_idx}_{kind}_{i}" for i in range(executions)]
        for i, op_id in enumerate(stage_ids):
            if not prev_ids:
                deps: tuple[str, ...] = ()
            elif fan_in and len(prev_ids) >= executions:
                per = len(prev_ids) // executions
                lo = i * per
                hi = len(prev_ids) if i == executions - 1 else lo + per
                deps = tuple(prev_ids[lo:hi])
            elif fan_in:
                deps = (prev_ids[i % len(prev_ids)],)
            else:
                deps = tuple(prev_ids)
            ops.append(AtomOp(op_id, kind, deps, latency))
        prev_ids = stage_ids
    return Dataflow(ops)
