"""Core RISPP model: Atoms, Molecules, Special Instructions, selection.

This package implements the paper's primary contribution — the formal
Atom/Molecule model (section 3), the Pareto trade-off analysis (Fig. 13),
dataflow scheduling of Atom operations, and run-time molecule selection
(section 5b).
"""

from .atom import AtomCatalogue, AtomKind
from .backend import (
    BackendUnavailableError,
    ComputeBackend,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    default_backend,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from .atomshare import (
    AtomProposal,
    common_subsequence,
    longest_common_subsequence,
    suggest_shared_atoms,
)
from .library import SILibrary
from .molecule import AtomSpace, Molecule, infimum, supremum
from .molgen import GenerationReport, enumerate_molecules, generate_si, prune_dominated
from .serialize import (
    library_from_dict,
    library_to_dict,
    load_library,
    save_library,
)
from .pareto import ParetoPoint, is_pareto_optimal, pareto_front, pareto_front_of, tradeoff_points
from .schedule import (
    AtomOp,
    Dataflow,
    Schedule,
    ScheduledOp,
    estimate_cycles,
    layered_dataflow,
    list_schedule,
)
from .selection import (
    ForecastedSI,
    SelectionResult,
    select_exhaustive,
    select_greedy,
    upgrade_path,
)
from .si import MoleculeImpl, SpecialInstruction

__all__ = [
    "AtomCatalogue",
    "AtomKind",
    "AtomProposal",
    "BackendUnavailableError",
    "ComputeBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "GenerationReport",
    "AtomOp",
    "AtomSpace",
    "Dataflow",
    "ForecastedSI",
    "Molecule",
    "MoleculeImpl",
    "ParetoPoint",
    "Schedule",
    "ScheduledOp",
    "SelectionResult",
    "SILibrary",
    "SpecialInstruction",
    "common_subsequence",
    "enumerate_molecules",
    "estimate_cycles",
    "generate_si",
    "infimum",
    "is_pareto_optimal",
    "layered_dataflow",
    "list_schedule",
    "longest_common_subsequence",
    "pareto_front",
    "pareto_front_of",
    "prune_dominated",
    "select_exhaustive",
    "select_greedy",
    "library_from_dict",
    "library_to_dict",
    "load_library",
    "save_library",
    "suggest_shared_atoms",
    "supremum",
    "tradeoff_points",
    "upgrade_path",
]
