"""Special Instructions and their Molecule implementations (section 3.2).

A Special Instruction (SI) bundles

* an *optimised software molecule* — the plain-ISA fallback the core
  executes when no (or not enough) Atoms are loaded, and
* a set of *hardware molecules* — alternative Atom compositions trading
  area (Atom instances) against latency (cycles).

The paper represents each SI at run time by the Meta-Molecule
``Rep(S) = ceil( (1/|S|) * sum of S's hardware molecules )`` so that SI/SI
compatibility reduces to Meta-Molecule compatibility; :meth:`SpecialInstruction.rep`
implements exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable

from .molecule import AtomSpace, Molecule, supremum


@dataclass(frozen=True)
class MoleculeImpl:
    """One hardware implementation option of an SI.

    Parameters
    ----------
    molecule:
        The Atom requirement vector.
    cycles:
        Latency of one SI execution with this molecule, in core cycles.
    label:
        Optional human-readable tag (e.g. ``"L2 P1 T1 S1"``).
    """

    molecule: Molecule
    cycles: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("molecule latency must be at least one cycle")
        if self.molecule.is_zero():
            raise ValueError("a hardware molecule must use at least one atom")

    def atoms(self) -> int:
        """Total Atom instances of this implementation (the determinant)."""
        return abs(self.molecule)


class SpecialInstruction:
    """A Special Instruction with software fallback and hardware molecules."""

    def __init__(
        self,
        name: str,
        space: AtomSpace,
        software_cycles: int,
        implementations: Iterable[MoleculeImpl],
        description: str = "",
    ):
        if software_cycles < 1:
            raise ValueError("software execution needs at least one cycle")
        impls = tuple(implementations)
        for impl in impls:
            if impl.molecule.space != space:
                raise ValueError(
                    f"molecule {impl!r} of SI {name!r} lives in a foreign atom space"
                )
        if not impls:
            raise ValueError(f"SI {name!r} needs at least one hardware molecule")
        self.name = name
        self.space = space
        self.software_cycles = software_cycles
        self.implementations = impls
        self.description = description

    # -- structural queries ------------------------------------------------

    def molecules(self) -> tuple[Molecule, ...]:
        """All hardware molecules (the software molecule is excluded,
        matching the paper's footnote on ``Rep``)."""
        return tuple(impl.molecule for impl in self.implementations)

    def minimal_molecule(self) -> MoleculeImpl:
        """The implementation with the fewest Atom instances.

        Ties are broken towards the faster implementation.
        """
        return min(self.implementations, key=lambda i: (i.atoms(), i.cycles))

    def fastest_molecule(self) -> MoleculeImpl:
        """The implementation with the lowest latency (ties: fewer atoms)."""
        return min(self.implementations, key=lambda i: (i.cycles, i.atoms()))

    def supremum(self) -> Molecule:
        """Atoms needed to implement *any* molecule of this SI."""
        return supremum(self.molecules(), space=self.space)

    def rep(self) -> Molecule:
        """The representative Meta-Molecule ``Rep(S)`` (section 3.2).

        Component-wise ceiling of the average Atom usage over all hardware
        molecules of the SI.
        """
        total = [0] * self.space.dimension
        for molecule in self.molecules():
            for i, c in enumerate(molecule.counts):
                total[i] += c
        n = len(self.implementations)
        return Molecule(self.space, (math.ceil(t / n) for t in total))

    # -- run-time queries ----------------------------------------------------

    def best_available(self, available: Molecule) -> MoleculeImpl | None:
        """Fastest implementation executable with the ``available`` Atoms.

        Returns ``None`` when not even the minimal molecule fits, i.e. the
        SI must run as its software molecule.
        """
        fitting = [i for i in self.implementations if i.molecule <= available]
        if not fitting:
            return None
        return min(fitting, key=lambda i: (i.cycles, i.atoms()))

    def cycles_with(self, available: Molecule) -> int:
        """Latency of one execution given the ``available`` Atoms.

        Falls back to the software latency when no molecule fits — this is
        the gradual SW -> partial HW -> full HW upgrade behaviour the paper
        calls *Rotation in Advance*.
        """
        best = self.best_available(available)
        return self.software_cycles if best is None else best.cycles

    def expected_speedup(self, impl: MoleculeImpl) -> float:
        """Speed-up of ``impl`` over the optimised software molecule.

        The paper's trimming algorithm (Fig. 5) uses "the difference in
        execution speed between the Molecules and the software execution";
        we report the ratio ``T_sw / T_hw`` (>= 1 for any sane molecule),
        which orders candidates identically and stays scale-free.
        """
        return self.software_cycles / impl.cycles

    def max_expected_speedup(self) -> float:
        """Speed-up of the fastest hardware molecule over software."""
        return self.expected_speedup(self.fastest_molecule())

    def __repr__(self) -> str:
        return (
            f"SpecialInstruction({self.name!r}, sw={self.software_cycles}cyc, "
            f"{len(self.implementations)} molecules)"
        )
