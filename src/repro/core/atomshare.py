"""Reusable-Atom discovery (paper future work, §6 / reference [31]).

"For future work we consider automatic generation of reusable Atoms by
e.g. methods for finding the longest common subsequence of multiple
sequences."  This module implements that idea: each SI is described as
the sequence of primitive operations its data path performs; common
subsequences across SIs are candidate shared Atoms (the longer the
subsequence and the more SIs it serves, the more silicon one reusable
Atom saves).

The pairwise longest common subsequence is exact dynamic programming; for
more than two sequences the classic greedy fold (LCS of the running
result with the next sequence) is used — the same heuristic family the
referenced work employs, exact for two SIs and a lower bound beyond.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Mapping, Sequence


def longest_common_subsequence(a: Sequence[str], b: Sequence[str]) -> list[str]:
    """Exact LCS of two operation sequences (dynamic programming)."""
    n, m = len(a), len(b)
    if not n or not m:
        return []
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if a[i] == b[j]:
                table[i][j] = 1 + table[i + 1][j + 1]
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])
    out: list[str] = []
    i = j = 0
    while i < n and j < m:
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return out


def common_subsequence(sequences: Sequence[Sequence[str]]) -> list[str]:
    """Greedy multi-sequence common subsequence (LCS fold)."""
    if not sequences:
        raise ValueError("need at least one sequence")
    result = list(sequences[0])
    for seq in sequences[1:]:
        result = longest_common_subsequence(result, seq)
        if not result:
            break
    return result


@dataclass(frozen=True)
class AtomProposal:
    """One candidate reusable Atom."""

    operations: tuple[str, ...]
    served_sis: tuple[str, ...]
    #: Operations saved by sharing: (#SIs - 1) * len(operations).
    saving: int

    def __len__(self) -> int:
        return len(self.operations)


def suggest_shared_atoms(
    si_sequences: Mapping[str, Sequence[str]],
    *,
    min_length: int = 2,
    min_sis: int = 2,
) -> list[AtomProposal]:
    """Propose reusable Atoms across a set of SI operation sequences.

    For every subset of SIs (largest first), the common subsequence is
    computed; subsequences of at least ``min_length`` operations shared
    by at least ``min_sis`` SIs become proposals, ranked by the silicon
    saving ``(#SIs - 1) * length``.  Proposals whose operation sequence
    and SI set are both covered by a stronger proposal are dropped.
    """
    if min_length < 1 or min_sis < 2:
        raise ValueError("min_length must be >=1 and min_sis >=2")
    names = sorted(si_sequences)
    if len(names) < min_sis:
        return []
    proposals: list[AtomProposal] = []
    for size in range(len(names), min_sis - 1, -1):
        for subset in itertools.combinations(names, size):
            seqs = [list(si_sequences[n]) for n in subset]
            common = common_subsequence(seqs)
            if len(common) < min_length:
                continue
            proposals.append(
                AtomProposal(
                    operations=tuple(common),
                    served_sis=tuple(subset),
                    saving=(size - 1) * len(common),
                )
            )
    # Deduplicate: drop proposals subsumed by a proposal serving a
    # superset of SIs with a super- or equal sequence.
    kept: list[AtomProposal] = []
    proposals.sort(key=lambda p: (-p.saving, -len(p), p.served_sis))
    for p in proposals:
        subsumed = False
        for q in kept:
            if set(p.served_sis) <= set(q.served_sis) and _is_subsequence(
                p.operations, q.operations
            ):
                subsumed = True
                break
        if not subsumed:
            kept.append(p)
    return kept


def _is_subsequence(small: Sequence[str], big: Sequence[str]) -> bool:
    it = iter(big)
    return all(op in it for op in small)


#: The Fig. 9 story as data: the three H.264 transforms share their
#: add/subtract butterfly; only the shift elements differ.  Feeding these
#: sequences to :func:`suggest_shared_atoms` re-discovers the reusable
#: Transform atom.
H264_TRANSFORM_SEQUENCES: dict[str, tuple[str, ...]] = {
    "DCT_4x4": (
        "add", "add", "sub", "sub",      # butterfly stage 1 (e0..e3)
        "add", "shl", "add", "sub", "shl", "sub",  # stage 2 with <<1
    ),
    "HT_4x4": (
        "add", "add", "sub", "sub",
        "add", "add", "sub", "sub",
        "shr",                            # >>1 output shifters
    ),
    "HT_2x2": (
        "add", "add", "sub", "sub",
        "add", "add", "sub", "sub",
    ),
}
