"""Automatic Molecule generation (paper future work, §6).

The paper designs its molecules manually and notes that "automatic
detection and generation of SIs might be done similar to [17] or [18]".
This module automates the *molecule-catalogue* half of that flow: given
an SI's atomic-operation dataflow, it enumerates candidate Atom-count
vectors, prices each with the resource-constrained list scheduler, and
keeps only the Pareto-useful implementations — producing a Table 2-style
catalogue without hand tuning.

The search space is bounded naturally: offering more instances of a kind
than the dataflow can ever use in parallel cannot help, so each kind is
capped by its maximum per-stage parallelism (and an optional global cap).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .molecule import AtomSpace
from .schedule import Dataflow, estimate_cycles
from .si import MoleculeImpl, SpecialInstruction


@dataclass(frozen=True)
class GenerationReport:
    """What the enumeration explored and kept."""

    explored: int
    kept: int
    pruned_dominated: int


def _parallelism_caps(dataflow: Dataflow) -> dict[str, int]:
    """Max concurrently-runnable operations per kind (stage-wise bound)."""
    # An upper bound: the total executions per kind (exact per-stage
    # concurrency analysis would need level information; the scheduler
    # prunes useless surplus anyway).
    return dataflow.executions_per_kind()


def enumerate_molecules(
    dataflow: Dataflow,
    space: AtomSpace,
    *,
    max_per_kind: int | None = None,
    unconstrained_kinds: tuple[str, ...] = (),
    issue_overhead: int = 0,
    counts_allowed: tuple[int, ...] | None = None,
) -> tuple[list[MoleculeImpl], GenerationReport]:
    """Enumerate and price all useful molecules of one dataflow.

    Parameters
    ----------
    max_per_kind:
        Global cap on instances per kind (defaults to each kind's
        execution count — beyond that nothing can improve).
    unconstrained_kinds:
        Kinds provided by the static fabric (not enumerated; unlimited).
    counts_allowed:
        Restrict instance counts to these values (the paper's catalogue
        uses {1, 2, 4}: power-of-two replication matches the butterfly
        dataflows).  ``None`` allows every count up to the cap.

    Returns the Pareto-pruned implementations (sorted by atoms, then
    cycles) and a :class:`GenerationReport`.
    """
    needed = dataflow.executions_per_kind()
    kinds = [k for k in space.kinds if k in needed and k not in unconstrained_kinds]
    if not kinds:
        raise ValueError("dataflow uses no enumerable atom kinds")
    caps = _parallelism_caps(dataflow)
    ranges = []
    for kind in kinds:
        cap = caps[kind]
        if max_per_kind is not None:
            cap = min(cap, max_per_kind)
        values = [v for v in range(1, cap + 1)]
        if counts_allowed is not None:
            values = [v for v in values if v in counts_allowed]
            if not values:
                raise ValueError(
                    f"counts_allowed leaves no option for kind {kind!r}"
                )
        ranges.append(values)

    candidates: list[MoleculeImpl] = []
    explored = 0
    for combo in itertools.product(*ranges):
        explored += 1
        molecule = space.molecule(dict(zip(kinds, combo)))
        cycles = estimate_cycles(
            dataflow,
            molecule,
            unconstrained_kinds=unconstrained_kinds,
            issue_overhead=issue_overhead,
        )
        label = " ".join(f"{k[:2]}{c}" for k, c in zip(kinds, combo))
        candidates.append(MoleculeImpl(molecule, cycles, label=label))

    kept = prune_dominated(candidates)
    report = GenerationReport(
        explored=explored,
        kept=len(kept),
        pruned_dominated=explored - len(kept),
    )
    return kept, report


def prune_dominated(impls: list[MoleculeImpl]) -> list[MoleculeImpl]:
    """Drop implementations dominated in (molecule, cycles).

    ``a`` dominates ``b`` when ``a.molecule <= b.molecule`` and
    ``a.cycles <= b.cycles`` with at least one strict inequality: ``b``
    costs at least as many atoms *of every kind* and is not faster.
    """
    kept: list[MoleculeImpl] = []
    for b in impls:
        dominated = False
        for a in impls:
            if a is b:
                continue
            if a.molecule <= b.molecule and a.cycles <= b.cycles and (
                a.molecule != b.molecule or a.cycles < b.cycles
            ):
                dominated = True
                break
        if not dominated:
            kept.append(b)
    # Deduplicate identical survivors, keep deterministic order.
    seen: set[tuple[tuple[int, ...], int]] = set()
    unique: list[MoleculeImpl] = []
    for impl in sorted(kept, key=lambda i: (i.atoms(), i.cycles, i.molecule.counts)):
        key = (impl.molecule.counts, impl.cycles)
        if key not in seen:
            seen.add(key)
            unique.append(impl)
    return unique


def generate_si(
    name: str,
    dataflow: Dataflow,
    space: AtomSpace,
    software_cycles: int,
    *,
    description: str = "",
    **enumeration_options,
) -> tuple[SpecialInstruction, GenerationReport]:
    """Build a complete SI with an auto-generated molecule catalogue."""
    impls, report = enumerate_molecules(dataflow, space, **enumeration_options)
    si = SpecialInstruction(
        name,
        space,
        software_cycles,
        impls,
        description=description or f"auto-generated from a {len(dataflow)}-op dataflow",
    )
    return si, report
