"""Timing harness and report schema for ``python -m repro bench``.

The harness produces one machine-readable report per suite run —
``BENCH_runtime.json`` by convention — so the project accumulates a
performance trajectory over time (CI uploads the report as an artifact
on every push).  The schema is deliberately small and stable:

.. code-block:: text

    schema_version     int     bumped only on breaking layout changes
    suite              str     h264 | aes | synthetic
    quick              bool    reduced iteration counts (CI mode)
    python / platform  str     environment fingerprint
    end_to_end         dict    baseline vs optimized wall time + speedup,
                               the trace-equivalence verdict and the
                               rispp-verify replay verdict
    stages             list    per-stage micro-benchmarks
    totals             dict    aggregate wall time
    metrics            dict    deterministic repro.obs snapshot of one
                               instrumented (untimed) scenario run — the
                               same ``metrics`` key the chaos reports
                               carry (see repro.obs.exporters.snapshot)

Timing uses best-of-N ``perf_counter`` runs: the minimum is the least
noisy estimator of the achievable time on a shared machine.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.clock import perf_counter, utc_stamp
from ..sim.trace import Trace

SCHEMA_VERSION = 1


@dataclass
class StageResult:
    """Outcome of one timed stage (best-of-``repeats`` runs)."""

    name: str
    wall_s: float
    #: Work units performed inside one timed run.
    iterations: int
    repeats: int
    unit: str = "ops/s"
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.wall_s <= 0:
            return float("inf")
        return self.iterations / self.wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "iterations": self.iterations,
            "repeats": self.repeats,
            "throughput": round(self.throughput, 2),
            "unit": self.unit,
            "extra": self.extra,
        }


def time_stage(
    name: str,
    fn: Callable[[], Any],
    *,
    iterations: int,
    repeats: int = 3,
    unit: str = "ops/s",
    extra: dict | None = None,
) -> StageResult:
    """Time ``fn`` (one call performs ``iterations`` work units)."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return StageResult(
        name=name,
        wall_s=best,
        iterations=iterations,
        repeats=repeats,
        unit=unit,
        extra=extra or {},
    )


def time_best(fn: Callable[[], Any], *, repeats: int = 3) -> tuple[float, Any]:
    """Best wall time of ``fn`` over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        start = perf_counter()
        result = fn()
        best = min(best, perf_counter() - start)
    return best, result


def trace_signature(trace: Trace) -> list[tuple]:
    """A trace as comparable tuples (cycle, kind, task, si, detail).

    Lazy details are resolved here, so two runtimes are equivalent iff
    their signatures are equal — the bench and the regression tests use
    this to prove the hot-path caches never change event semantics.
    """
    return [
        (e.cycle, e.kind.value, e.task, e.si, dict(e.detail))
        for e in trace
    ]


def build_report(
    suite: str,
    *,
    quick: bool,
    end_to_end: dict,
    stages: list[StageResult],
    metrics: dict | None = None,
) -> dict:
    """Assemble the schema-stable JSON report."""
    stage_dicts = [s.to_dict() for s in stages]
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "quick": quick,
        "timestamp_utc": utc_stamp(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "end_to_end": end_to_end,
        "stages": stage_dicts,
        "totals": {
            "stage_wall_s": round(sum(s.wall_s for s in stages), 6),
            "stages": len(stages),
        },
        "metrics": metrics if metrics is not None else {},
    }


def render_report(report: dict) -> str:
    """Human-readable summary of a report (the CLI's default output)."""
    lines = [
        f"bench suite: {report['suite']}"
        + (" (quick)" if report.get("quick") else ""),
        f"python {report['python']} on {report['platform']}",
        "",
    ]
    e2e = report.get("end_to_end") or {}
    if e2e:
        lines.append(f"end-to-end: {e2e.get('scenario', '?')}")
        lines.append(
            f"  baseline   {e2e['baseline_s'] * 1000:10.1f} ms"
        )
        lines.append(
            f"  optimized  {e2e['optimized_s'] * 1000:10.1f} ms"
            f"   ({e2e['speedup']:.2f}x speedup)"
        )
        if "cycles_per_sec" in e2e:
            lines.append(
                f"  throughput {e2e['cycles_per_sec']:,.0f} simulated cycles/s"
            )
        lines.append(
            "  trace equivalence: "
            + ("OK" if e2e.get("trace_equal") else "MISMATCH")
            + f" ({e2e.get('trace_events', 0)} events)"
        )
        if "trace_verified" in e2e:
            lines.append(
                "  trace verification: "
                + ("OK" if e2e.get("trace_verified") else "FAILED")
                + f" ({len(e2e.get('verify_findings', []))} finding(s))"
            )
            for finding in e2e.get("verify_findings", []):
                lines.append(f"    {finding}")
        lines.append("")
    if report.get("stages"):
        lines.append(f"{'stage':<24} {'wall [ms]':>12} {'throughput':>16}")
        for s in report["stages"]:
            lines.append(
                f"{s['name']:<24} {s['wall_s'] * 1000:>12.2f} "
                f"{s['throughput']:>12,.0f} {s['unit']}"
            )
    families = (report.get("metrics") or {}).get("metrics")
    if families is not None:
        lines.append("")
        lines.append(
            f"telemetry snapshot: {len(families)} metric families "
            "(repro.obs, deterministic series)"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
