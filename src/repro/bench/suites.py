"""Benchmark suites: end-to-end flows plus hot-path micro-benchmarks.

Three suites cover the repo's workloads:

* ``h264`` — the paper's headline case study: a macroblock-shaped SI
  stream (256 SATD + 24 DCT + 1 HT_4x4 + 2 HT_2x2 per MB, the Fig. 7
  invocation structure) driven through :class:`RisppRuntime`, plus the
  full ``compile_and_run`` flow on an H.264-flavoured IR program.
* ``aes`` — the complete compile-then-run pipeline on the functional
  AES program (profiling + forecast insertion dominate here).
* ``synthetic`` — a small generated library; fast enough for CI's quick
  mode while exercising the same code paths.

Every suite measures the end-to-end scenario twice — once with
``optimize=False`` (the pre-optimization baseline: no fabric generation
cache, no memoized ``best_available``, no replan skip, eager trace
details) and once with ``optimize=True`` — verifies the two event traces
are identical, and reports the speedup.  Micro-benchmarks cover the four
run-time hot paths: molecule selection, rotation planning, ``execute_si``
and trace recording.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.atom import AtomCatalogue, AtomKind
from ..core.library import SILibrary
from ..core.selection import ForecastedSI, select_greedy
from ..core.si import MoleculeImpl, SpecialInstruction
from ..forecast import ForecastDecisionFunction
from ..hardware.fabric import Fabric
from ..hardware.reconfig import ReconfigurationPort
from ..runtime.manager import RisppRuntime
from ..runtime.replacement import LRUPolicy
from ..runtime.rotation import plan_rotations
from ..sim.ir import Branch, Jump, Program
from ..sim.trace import EventKind, Trace
from .harness import (
    StageResult,
    build_report,
    time_best,
    time_stage,
    trace_signature,
)

#: Fig. 7 invocation structure: SI calls of one encoded macroblock.
H264_MACROBLOCK_CALLS = (
    ("SATD_4x4", 256),
    ("DCT_4x4", 24),
    ("HT_4x4", 1),
    ("HT_2x2", 2),
)


# -- generic runtime scenario -------------------------------------------------


def run_si_stream(
    library: SILibrary,
    forecasts: list[tuple[str, float]],
    blocks: list[tuple[str, int]],
    *,
    containers: int,
    block_rounds: int,
    warmup_cycles: int = 700_000,
    inter_block_cycles: int = 5_000,
    optimize: bool,
    energy_model=None,
    fault_injector=None,
    metrics=None,
    backend=None,
    wrap=None,
) -> RisppRuntime:
    """Fire the loop-head forecasts, then execute the SI stream.

    Forecasts re-fire at every block round — the paper's FC points sit at
    the loop head and fire on each entry.  Rotations land while the first
    rounds still execute (the gradual SW -> HW upgrade of Fig. 6); once
    the monitor's fine-tuned expectations match the observed per-round
    counts, the re-firings become steady-state no-op replans (the replan
    skip cache's main prey).
    """
    rt = RisppRuntime(
        library, containers, core_mhz=100.0, optimize=optimize,
        energy_model=energy_model, faults=fault_injector, metrics=metrics,
        backend=backend,
    )
    if wrap is not None:
        # Recovery hook (repro.recovery): journals the stream so the run
        # can be killed at any command boundary and resumed.
        rt = wrap(rt)
    now = warmup_cycles
    for _ in range(block_rounds):
        for si_name, expected in forecasts:
            rt.forecast(si_name, now, expected=expected)
        for si_name, calls in blocks:
            for _ in range(calls):
                now += rt.execute_si(si_name, now)
        now += inter_block_cycles
    return rt


def verify_equivalence(
    baseline_rt: RisppRuntime, optimized_rt: RisppRuntime
) -> dict:
    """Replay both traces through rispp-verify's reference machine.

    Signature equality alone would also bless a *pair* of traces that
    agree on the same wrong behaviour; model-based verification closes
    that hole, so "equivalent" means both traces satisfy the §3/§5
    runtime invariants *and* their signatures match.
    """
    from ..analysis.verify import verify_runtime

    baseline_report = verify_runtime(baseline_rt, subject="bench:baseline")
    optimized_report = verify_runtime(optimized_rt, subject="bench:optimized")
    findings = baseline_report.errors() + optimized_report.errors()
    return {
        "trace_verified": not findings,
        "verify_findings": [d.render() for d in findings],
    }


def end_to_end_stage(
    scenario_name: str,
    run: Callable[[bool], RisppRuntime],
    *,
    repeats: int,
) -> dict:
    """Time ``run`` in baseline and optimized mode; verify equivalence."""
    baseline_s, baseline_rt = time_best(lambda: run(False), repeats=repeats)
    optimized_s, optimized_rt = time_best(lambda: run(True), repeats=repeats)
    equal = trace_signature(baseline_rt.trace) == trace_signature(
        optimized_rt.trace
    )
    simulated = optimized_rt.stats.si_cycles
    return {
        "scenario": scenario_name,
        "baseline_s": round(baseline_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(baseline_s / optimized_s, 3) if optimized_s else 0.0,
        "trace_equal": equal,
        "trace_events": len(optimized_rt.trace),
        "si_executions": optimized_rt.stats.si_executions,
        "simulated_cycles": simulated,
        "cycles_per_sec": round(simulated / optimized_s, 1)
        if optimized_s
        else 0.0,
        **verify_equivalence(baseline_rt, optimized_rt),
    }


# -- micro-benchmarks ---------------------------------------------------------


def micro_stages(
    library: SILibrary,
    forecasts: list[tuple[str, float]],
    *,
    containers: int,
    rounds: int,
    repeats: int,
) -> list[StageResult]:
    """The four hot-path micro-benchmarks over one library."""
    requests = [
        ForecastedSI(library.get(name), weight) for name, weight in forecasts
    ]

    def bench_selection() -> None:
        for _ in range(rounds):
            select_greedy(library, requests, containers)

    demand = select_greedy(library, requests, containers).demand

    def bench_planning() -> None:
        for _ in range(rounds):
            fabric = Fabric(library.catalogue, containers)
            port = ReconfigurationPort(library.catalogue, core_mhz=100.0)
            plan_rotations(
                library, fabric, port, demand, LRUPolicy(), 0
            )

    # A primed runtime: rotations have landed, executions run in hardware.
    rt = RisppRuntime(library, containers, core_mhz=100.0)
    for si_name, expected in forecasts:
        rt.forecast(si_name, 0, expected=expected)
    start = max((j.finish_at for j in rt.port.jobs), default=0) + 1
    exec_rounds = rounds * 10
    exec_si = forecasts[0][0]
    # The runtime is reused across timing repeats; its clock (and hence
    # the trace) must stay monotone, so the cursor lives outside the fn.
    clock = {"now": start}

    def bench_execute() -> None:
        now = clock["now"]
        for _ in range(exec_rounds):
            now += rt.execute_si(exec_si, now)
        clock["now"] = now

    rec_rounds = rounds * 100

    def bench_record() -> None:
        trace = Trace()
        for i in range(rec_rounds):
            trace.record(
                i, EventKind.SI_EXECUTED, task="bench", si=exec_si,
                mode="HW", cycles=12,
            )

    return [
        time_stage(
            "selection", bench_selection,
            iterations=rounds, repeats=repeats, unit="selections/s",
        ),
        selection_backend_stage(
            library, forecasts, containers=containers,
            rounds=rounds, repeats=repeats,
        ),
        time_stage(
            "rotation_planning", bench_planning,
            iterations=rounds, repeats=repeats, unit="plans/s",
        ),
        time_stage(
            "execute_si", bench_execute,
            iterations=exec_rounds, repeats=repeats, unit="execs/s",
        ),
        time_stage(
            "trace_record", bench_record,
            iterations=rec_rounds, repeats=repeats, unit="events/s",
        ),
        metrics_overhead_stage(
            library, forecasts, containers=containers,
            rounds=rounds, repeats=repeats,
        ),
    ]


def selection_backend_stage(
    library: SILibrary,
    forecasts: list[tuple[str, float]],
    *,
    containers: int,
    rounds: int,
    repeats: int,
) -> StageResult:
    """Reference vs numpy selection kernels on one library.

    Times the greedy selection loop on both compute backends (stage
    throughput is the *numpy* backend's; ``extra.speedup`` records the
    vectorization win, with a >=10x target on the shipped suites) and
    enforces the PR-2/3-style equivalence contract along the way:

    * identical ``SelectionResult`` objects from both backends for the
      suite's forecast mix (greedy and exhaustive),
    * identical event traces from a short end-to-end scenario run once
      per backend, and
    * both of those traces replaying cleanly through rispp-verify's
      reference machine.

    Without numpy installed the stage degrades to timing the reference
    backend alone and reports ``numpy_available: False``.
    """
    from ..core.backend import BackendUnavailableError, get_backend
    from ..core.selection import select_exhaustive

    requests = [
        ForecastedSI(library.get(name), weight) for name, weight in forecasts
    ]
    reference = get_backend("reference")

    def selection_loop(backend) -> None:
        for _ in range(rounds):
            select_greedy(library, requests, containers, backend=backend)

    try:
        vectorized = get_backend("numpy")
    except BackendUnavailableError:  # pragma: no cover - numpy ships
        wall_s, _ = time_best(
            lambda: selection_loop(reference), repeats=repeats
        )
        return StageResult(
            name="selection_backend", wall_s=wall_s, iterations=rounds,
            repeats=repeats, unit="selections/s",
            extra={"numpy_available": False},
        )

    reference_s, _ = time_best(
        lambda: selection_loop(reference), repeats=repeats
    )
    numpy_s, _ = time_best(
        lambda: selection_loop(vectorized), repeats=repeats
    )

    results_equal = (
        select_greedy(library, requests, containers, backend=reference)
        == select_greedy(library, requests, containers, backend=vectorized)
        and select_exhaustive(library, requests, containers, backend=reference)
        == select_exhaustive(library, requests, containers, backend=vectorized)
    )

    # Short end-to-end scenario per backend: the traces must match
    # event-for-event, and both must satisfy the reference machine.
    blocks = [
        (name, max(1, min(int(weight), 8))) for name, weight in forecasts
    ]

    def scenario(backend_name: str) -> RisppRuntime:
        return run_si_stream(
            library, forecasts, blocks, containers=containers,
            block_rounds=2, optimize=True, backend=backend_name,
        )

    reference_rt = scenario("reference")
    numpy_rt = scenario("numpy")
    trace_equal = trace_signature(reference_rt.trace) == trace_signature(
        numpy_rt.trace
    )
    verdict = verify_equivalence(reference_rt, numpy_rt)

    return StageResult(
        name="selection_backend",
        wall_s=numpy_s,
        iterations=rounds,
        repeats=repeats,
        unit="selections/s",
        extra={
            "numpy_available": True,
            "reference_s": round(reference_s, 6),
            "numpy_s": round(numpy_s, 6),
            "speedup": round(reference_s / numpy_s, 2) if numpy_s else 0.0,
            "results_equal": results_equal,
            "trace_equal": trace_equal,
            "trace_verified": verdict["trace_verified"],
        },
    )


def metrics_overhead_stage(
    library: SILibrary,
    forecasts: list[tuple[str, float]],
    *,
    containers: int,
    rounds: int,
    repeats: int,
) -> StageResult:
    """Telemetry cost on the ``execute_si`` hot loop (repro.obs).

    Two numbers, measured on primed runtimes (rotations landed,
    executions in hardware):

    * ``enabled_overhead_pct`` — wall time of the hot loop with a live
      :class:`~repro.obs.MetricRegistry` vs the disabled default
      (informational; telemetry on is allowed to cost something).
    * ``disabled_overhead_pct`` — the disabled path's *only* per-event
      work is one pre-resolved boolean guard (``self._obs_on``); no
      uninstrumented twin exists to diff against, so the guard is timed
      directly in a burst loop against an empty loop and scaled to one
      guard evaluation per execution.  The regression tests pin this
      below 3%.
    """
    from ..obs import MetricRegistry

    def primed(metrics) -> tuple[RisppRuntime, int]:
        rt = RisppRuntime(
            library, containers, core_mhz=100.0, metrics=metrics
        )
        for si_name, expected in forecasts:
            rt.forecast(si_name, 0, expected=expected)
        start = max((j.finish_at for j in rt.port.jobs), default=0) + 1
        return rt, start

    exec_rounds = rounds * 10
    exec_si = forecasts[0][0]

    def exec_loop(rt: RisppRuntime, clock: dict) -> Callable[[], None]:
        def fn() -> None:
            now = clock["now"]
            for _ in range(exec_rounds):
                now += rt.execute_si(exec_si, now)
            clock["now"] = now

        return fn

    rt_off, start_off = primed(None)
    off_s, _ = time_best(exec_loop(rt_off, {"now": start_off}), repeats=repeats)
    rt_on, start_on = primed(MetricRegistry())
    on_s, _ = time_best(exec_loop(rt_on, {"now": start_on}), repeats=repeats)

    guard_rounds = exec_rounds * 50

    def guard_loop() -> None:
        for _ in range(guard_rounds):
            if rt_off._obs_on:  # the disabled path's per-event work
                pass

    def empty_loop() -> None:
        for _ in range(guard_rounds):
            pass

    guard_s, _ = time_best(guard_loop, repeats=repeats)
    empty_s, _ = time_best(empty_loop, repeats=repeats)
    guard_cost_s = max(0.0, guard_s - empty_s) / guard_rounds
    per_exec_s = off_s / exec_rounds if exec_rounds else 0.0
    disabled_pct = (
        100.0 * guard_cost_s / per_exec_s if per_exec_s > 0 else 0.0
    )
    enabled_pct = 100.0 * (on_s - off_s) / off_s if off_s > 0 else 0.0
    return StageResult(
        name="metrics_overhead",
        wall_s=off_s,
        iterations=exec_rounds,
        repeats=repeats,
        unit="execs/s",
        extra={
            "disabled_overhead_pct": round(disabled_pct, 3),
            "enabled_overhead_pct": round(enabled_pct, 2),
            "guard_ns": round(guard_cost_s * 1e9, 2),
            "enabled_wall_s": round(on_s, 6),
        },
    )


def state_explore_stage(*, quick: bool) -> StageResult:
    """Throughput of the rispp-explore bounded model checker (states/s).

    Runs a capped BFS over the tiny scope — the cap keeps the stage
    seconds-scale, so ``complete`` is False here and no proof is
    claimed; the CI ``explore`` job owns the exhaustive runs.  The
    dedupe ratio is reported because memoized revisits are the
    explorer's main cost lever.
    """
    from ..analysis.explore import explore

    cap = 400 if quick else 2000
    holder: dict[str, Any] = {}

    def run() -> None:
        holder["result"] = explore("tiny", max_states=cap)

    stage = time_stage(
        "state_explore", run,
        iterations=1, repeats=1 if quick else 2, unit="states/s",
    )
    result = holder["result"]
    stage.iterations = result.states_explored
    stage.extra = {
        "scope": result.scope,
        "max_states": cap,
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "dedupe_ratio": round(result.dedupe_ratio(), 4),
        "complete": result.complete,
        "violations": len(result.report),
    }
    return stage


def audit_stage(*, quick: bool) -> StageResult:
    """Wall time of the rispp-audit source analyzer over the shipped tree.

    A full parse-and-check of ``src/repro`` (no imports executed), the
    same run the CI ``audit`` job gates on.  Throughput is files/s; the
    finding counts are recorded so a regression that silently starts
    flagging (or missing) findings shows up in ``BENCH_runtime.json``.
    """
    from ..analysis.audit import run_audit

    holder: dict[str, Any] = {}

    def run() -> None:
        holder["result"] = run_audit()

    stage = time_stage(
        "audit", run, iterations=1, repeats=1 if quick else 3, unit="files/s",
    )
    result = holder["result"]
    stage.iterations = result.files_scanned
    stage.extra = {
        "files_scanned": result.files_scanned,
        "findings": len(result.report),
        "suppressed": result.suppressed,
        "stale_suppressions": len(result.stale_suppressions),
        "exit_code": result.exit_code(),
    }
    return stage


def recovery_stage(*, quick: bool, checkpoint_every: int = 16) -> StageResult:
    """Snapshot throughput and resume latency of ``repro.recovery``.

    The timed run drives the synthetic SI stream journaled into a
    temporary store, checkpointing every ``checkpoint_every`` commands —
    throughput is whole-world snapshots per second.  ``resume_s`` is the
    separately-timed cost of coming back: restore the latest snapshot
    into a fresh runtime and replay the journal tail.  ``trace_equal``
    asserts both the journaled and the resumed traces are identical to
    an uninterrupted run — the same crash-consistency guarantee the CI
    crash-recovery job checks end to end with real process kills.
    """
    from pathlib import Path
    from tempfile import TemporaryDirectory

    from ..recovery import RecoverableRuntime, latest_snapshot

    library = build_synthetic_library()
    forecasts = [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)]
    blocks = [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)]
    rounds = 6 if quick else 20

    def scenario(wrap: Any = None) -> RisppRuntime:
        return run_si_stream(
            library, forecasts, blocks,
            containers=5, block_rounds=rounds, optimize=True, wrap=wrap,
        )

    reference_sig = trace_signature(scenario().trace)
    holder: dict[str, Any] = {}

    with TemporaryDirectory(prefix="rispp-bench-recovery-") as tmp:
        store = Path(tmp)

        def journaled() -> None:
            rec = scenario(
                wrap=lambda rt: RecoverableRuntime(
                    rt, store, checkpoint_every=checkpoint_every
                )
            )
            rec.close()
            holder["run"] = rec

        stage = time_stage(
            "recovery", journaled,
            iterations=1, repeats=1 if quick else 2, unit="snapshots/s",
        )
        run = holder["run"]
        found = latest_snapshot(store)
        snapshot_bytes = found[1].stat().st_size if found is not None else 0

        def resume() -> Any:
            rec = RecoverableRuntime(
                RisppRuntime(library, 5, core_mhz=100.0, optimize=True),
                store, checkpoint_every=checkpoint_every, resume=True,
            )
            rec.close()
            return rec

        resume_s, resumed = time_best(resume, repeats=1 if quick else 3)

    trace_equal = (
        trace_signature(run.trace) == reference_sig
        and trace_signature(resumed.trace) == reference_sig
    )
    stage.iterations = run.snapshots_taken
    stage.extra = {
        "checkpoint_every": checkpoint_every,
        "snapshots": run.snapshots_taken,
        "snapshot_bytes": snapshot_bytes,
        "journal_records": run.journal_records,
        "replayed": resumed.replayed_records,
        "resume_s": round(resume_s, 6),
        "trace_equal": trace_equal,
    }
    return stage


def serve_stage(*, quick: bool) -> StageResult:
    """Scenario-daemon throughput through the RuntimeFacade (scenarios/s).

    Pushes one batch of seeded quick chaos scenarios through a 1-worker
    and a 4-worker :class:`repro.serve.RuntimeFacade` (each pool warmed
    with an untimed batch first, so process spawn and imports stay out
    of the measurement).  Throughput is the 4-worker figure; the
    1-worker wall time and the resulting speedup ride along in
    ``extra``, and ``results_equal`` asserts both pools returned
    byte-identical responses per request — the serve determinism
    contract the CLI turns into the bench exit code.
    """
    from ..serve import RuntimeFacade

    seeds = (3, 5) if quick else (3, 5, 7, 11)
    payloads = [
        {"suite": "synthetic", "seed": seed, "fault_rate": 50.0, "quick": True}
        for seed in seeds
    ]

    def batch(facade: Any) -> list[str]:
        futures = [facade.submit(p) for p in payloads]
        return [f.result() for f in futures]

    wall: dict[int, float] = {}
    results: dict[int, list[str]] = {}
    for workers in (1, 4):
        with RuntimeFacade(workers=workers) as facade:
            batch(facade)  # warm the pool
            wall[workers], results[workers] = time_best(
                lambda: batch(facade), repeats=1 if quick else 2
            )
    speedup = wall[1] / wall[4] if wall[4] > 0 else float("inf")
    return StageResult(
        name="serve",
        wall_s=wall[4],
        iterations=len(payloads),
        repeats=1 if quick else 2,
        unit="scenarios/s",
        extra={
            "workers": 4,
            "scenarios": len(payloads),
            "seeds": list(seeds),
            "wall_1_worker_s": round(wall[1], 6),
            "wall_4_workers_s": round(wall[4], 6),
            "speedup_4_workers": round(speedup, 2),
            "results_equal": results[1] == results[4],
        },
    )


# -- compile_and_run stages ---------------------------------------------------


def _fdfs_for(
    library: SILibrary, si_names: list[str], *, t_rot: float = 85_000.0
) -> dict[str, ForecastDecisionFunction]:
    fdfs = {}
    for name in si_names:
        si = library.get(name)
        fdfs[name] = ForecastDecisionFunction(
            t_rot=t_rot,
            t_sw=float(si.software_cycles),
            t_hw=float(si.fastest_molecule().cycles),
            rotation_energy=2_000.0,
        )
    return fdfs


def h264_loop_program(macroblocks: int) -> Program:
    """A macroblock-loop IR program with the Fig. 7 SI call mix.

    The per-block call counts are scaled down (the forecast pipeline
    profiles the program several times) while keeping every SI present.
    """
    p = Program("init")
    p.block(
        "init", cycles=100,
        action=lambda env: env.setdefault("mb", 0),
        terminator=Jump("warmup"),
    )
    p.block("warmup", cycles=700_000, terminator=Jump("mb_loop"))

    def bump(env):
        env["mb"] += 1

    p.block(
        "mb_loop",
        cycles=200,
        si_calls={"SATD_4x4": 16, "DCT_4x4": 6, "HT_4x4": 1, "HT_2x2": 2},
        action=bump,
        terminator=Branch(lambda env: env["mb"] < macroblocks, "mb_loop", "done"),
    )
    p.block("done", cycles=10)
    return p


def compile_and_run_stage(
    name: str,
    flow: Callable[[], object],
    *,
    repeats: int,
) -> StageResult:
    import warnings

    with warnings.catch_warnings():
        # Library-level lint advisories (e.g. dominated molecules) are
        # not bench output; `repro lint` reports them properly.
        warnings.simplefilter("ignore")
        wall, result = time_best(flow, repeats=repeats)
    extra = {}
    run = getattr(result, "result", None)
    if run is not None:
        extra = {
            "total_cycles": run.total_cycles,
            "si_executions": sum(run.si_executions.values()),
            "forecasts_fired": run.forecasts_fired,
        }
    return StageResult(
        name=name, wall_s=wall, iterations=1, repeats=repeats,
        unit="flows/s", extra=extra,
    )


# -- suites -------------------------------------------------------------------


def _metrics_snapshot(suite: str, *, quick: bool) -> dict:
    """One untimed instrumented scenario run, as a deterministic snapshot.

    The run is separate from the timed ones (which stay uninstrumented),
    so the snapshot costs nothing on the measured paths and — being
    deterministic-series-only — is byte-identical across report runs.
    """
    from ..obs import MetricRegistry, snapshot
    from ..obs.suites import METRIC_SUITES

    registry = MetricRegistry()
    METRIC_SUITES[suite](registry, quick=quick)
    return snapshot(registry, deterministic_only=True)


def run_h264(*, quick: bool = False) -> dict:
    from ..apps.h264 import build_h264_library
    from ..sim.integration import compile_and_run

    library = build_h264_library()
    forecasts = [
        ("SATD_4x4", 256.0), ("DCT_4x4", 24.0),
        ("HT_4x4", 1.0), ("HT_2x2", 2.0),
    ]
    macroblocks = 6 if quick else 40
    repeats = 2 if quick else 3

    def scenario(optimize: bool) -> RisppRuntime:
        return run_si_stream(
            library, forecasts, list(H264_MACROBLOCK_CALLS),
            containers=6, block_rounds=macroblocks, optimize=optimize,
        )

    end_to_end = end_to_end_stage(
        f"h264 encoder scenario ({macroblocks} macroblocks)",
        scenario, repeats=repeats,
    )
    stages = [
        compile_and_run_stage(
            "compile_and_run",
            lambda: compile_and_run(
                h264_loop_program(4 if quick else 12),
                library,
                _fdfs_for(library, [n for n, _ in forecasts]),
                containers=6,
                profile_runs=2,
            ),
            repeats=repeats,
        )
    ]
    stages += micro_stages(
        library, forecasts, containers=6,
        rounds=20 if quick else 100, repeats=repeats,
    )
    return build_report(
        "h264", quick=quick, end_to_end=end_to_end, stages=stages,
        metrics=_metrics_snapshot("h264", quick=quick),
    )


def run_aes(*, quick: bool = False) -> dict:
    from ..apps.aes import (
        build_aes_library,
        build_aes_program,
        default_aes_fdfs,
    )
    from ..sim.integration import compile_and_run

    library = build_aes_library()
    repeats = 2 if quick else 3
    program = build_aes_program()
    env = {"plaintext": b"\x21" * 16, "key": b"\x42" * 16}

    def env_factory(i: int) -> dict:
        return {
            "plaintext": bytes([i % 256] * 16),
            "key": bytes([(255 - i) % 256] * 16),
        }

    def flow(optimize: bool):
        return compile_and_run(
            program,
            library,
            default_aes_fdfs(),
            containers=6,
            profile_env_factory=env_factory,
            run_env=dict(env),
            profile_runs=2,
            optimize=optimize,
        )

    baseline_s, baseline = time_best(lambda: flow(False), repeats=repeats)
    optimized_s, optimized = time_best(lambda: flow(True), repeats=repeats)
    equal = trace_signature(baseline.runtime.trace) == trace_signature(
        optimized.runtime.trace
    )
    end_to_end = {
        "scenario": "aes compile_and_run",
        "baseline_s": round(baseline_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(baseline_s / optimized_s, 3) if optimized_s else 0.0,
        "trace_equal": equal,
        "trace_events": len(optimized.runtime.trace),
        "si_executions": optimized.runtime.stats.si_executions,
        "simulated_cycles": optimized.runtime.stats.si_cycles,
        "cycles_per_sec": round(
            optimized.runtime.stats.si_cycles / optimized_s, 1
        )
        if optimized_s
        else 0.0,
        **verify_equivalence(baseline.runtime, optimized.runtime),
    }
    forecasts = [("SUBBYTES", 10.0), ("MIXCOL", 9.0), ("KEYEXP", 10.0)]
    stages = micro_stages(
        library, forecasts, containers=6,
        rounds=20 if quick else 100, repeats=repeats,
    )
    return build_report(
        "aes", quick=quick, end_to_end=end_to_end, stages=stages,
        metrics=_metrics_snapshot("aes", quick=quick),
    )


def build_synthetic_library(
    *, kinds: int = 6, sis: int = 4
) -> SILibrary:
    """A generated library shaped like the case studies, but tiny."""
    atom_kinds = [
        AtomKind(f"Syn{i}", bitstream_bytes=40_000 + 4_000 * i)
        for i in range(kinds)
    ]
    catalogue = AtomCatalogue.of(atom_kinds)
    space = catalogue.space
    instructions = []
    for s in range(sis):
        base = {f"Syn{(s + j) % kinds}": 1 for j in range(2)}
        big = dict(base)
        big[f"Syn{(s + 2) % kinds}"] = 2
        instructions.append(
            SpecialInstruction(
                f"SI{s}",
                space,
                software_cycles=300 + 50 * s,
                implementations=[
                    MoleculeImpl(space.molecule(base), 40 + 10 * s),
                    MoleculeImpl(space.molecule(big), 12 + 4 * s),
                ],
            )
        )
    return SILibrary(catalogue, instructions)


def run_synthetic(*, quick: bool = False, checkpoint_every: int = 16) -> dict:
    library = build_synthetic_library()
    forecasts = [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)]
    blocks = [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)]
    rounds = 10 if quick else 60
    repeats = 2 if quick else 3

    def scenario(optimize: bool) -> RisppRuntime:
        return run_si_stream(
            library, forecasts, blocks,
            containers=5, block_rounds=rounds, optimize=optimize,
        )

    end_to_end = end_to_end_stage(
        f"synthetic SI stream ({rounds} rounds)", scenario, repeats=repeats
    )
    stages = micro_stages(
        library, forecasts, containers=5,
        rounds=20 if quick else 100, repeats=repeats,
    )
    stages.append(state_explore_stage(quick=quick))
    stages.append(audit_stage(quick=quick))
    stages.append(
        recovery_stage(quick=quick, checkpoint_every=checkpoint_every)
    )
    stages.append(serve_stage(quick=quick))
    return build_report(
        "synthetic", quick=quick, end_to_end=end_to_end, stages=stages,
        metrics=_metrics_snapshot("synthetic", quick=quick),
    )


SUITES: dict[str, Callable[..., dict]] = {
    "h264": run_h264,
    "aes": run_aes,
    "synthetic": run_synthetic,
}


def run_suite(
    name: str, *, quick: bool = False, checkpoint_every: int = 16
) -> dict:
    """Run one named suite and return its report dict.

    ``checkpoint_every`` sets the journal-commands-per-snapshot cadence
    of the ``recovery`` stage; only the ``synthetic`` suite carries it.
    """
    try:
        suite = SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {name!r}; choose from {sorted(SUITES)}"
        ) from None
    if name == "synthetic":
        return suite(quick=quick, checkpoint_every=checkpoint_every)
    return suite(quick=quick)
