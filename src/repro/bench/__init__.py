"""``repro.bench`` — the performance harness (``python -m repro bench``).

Times the end-to-end RISPP flows and the run-time hot paths, proves the
hot-path caches preserve event semantics (trace equivalence between the
``optimize=False`` baseline and the optimized runtime), and emits the
schema-stable ``BENCH_runtime.json`` performance report that CI uploads
on every push.
"""

from .harness import (
    SCHEMA_VERSION,
    StageResult,
    build_report,
    render_report,
    time_best,
    time_stage,
    trace_signature,
    write_report,
)
from .suites import (
    H264_MACROBLOCK_CALLS,
    SUITES,
    build_synthetic_library,
    run_si_stream,
    run_suite,
)

__all__ = [
    "SCHEMA_VERSION",
    "StageResult",
    "build_report",
    "render_report",
    "time_best",
    "time_stage",
    "trace_signature",
    "write_report",
    "H264_MACROBLOCK_CALLS",
    "SUITES",
    "build_synthetic_library",
    "run_si_stream",
    "run_suite",
]
