"""Exporters: Prometheus text exposition and schema-stable JSONL.

Two consumers, two formats:

* :func:`to_prometheus` renders the classic Prometheus text exposition
  (``# HELP`` / ``# TYPE`` / samples; histograms as cumulative
  ``_bucket{le=...}`` + ``_sum`` + ``_count``) for scraping;
  :func:`parse_prometheus` parses that text back into the canonical
  sample state so tests can prove the round trip is lossless
  (``parse_prometheus(to_prometheus(r)) == exposition_state(r)``).
* :func:`snapshot` / :func:`to_jsonl` produce the machine-readable
  snapshot embedded in ``BENCH_runtime.json`` and the chaos resilience
  reports (their shared ``metrics`` key).  With
  ``deterministic_only=True`` (the embedded default) wall-clock span
  timers are dropped, so a seeded run snapshots byte-identically.

Sample ordering is canonical everywhere — catalogue order for families,
sorted label values for children — so equal registry states render to
equal bytes.
"""

from __future__ import annotations

import json
import math
from typing import Any

from .catalogue import COUNTER, GAUGE, HISTOGRAM
from .registry import Counter, Gauge, Histogram, Instrument, MetricRegistry

SNAPSHOT_SCHEMA_VERSION = 1
SNAPSHOT_KIND = "rispp-metrics-snapshot"


def _num(value: float) -> float | int:
    """Integral floats as ints — smaller, and byte-stable across runs."""
    f = float(value)
    return int(f) if f.is_integer() and math.isfinite(f) else f


def _fmt(value: float) -> str:
    """Prometheus sample value formatting."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    n = _num(value)
    return str(n) if isinstance(n, int) else repr(n)


def _fmt_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _fmt(bound)


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _leaves(family: Instrument) -> list[tuple[tuple[tuple[str, str], ...], Instrument]]:
    """The sample-bearing instruments of one family, canonically ordered."""
    if not family.spec.labels:
        return [((), family)]
    return [
        (tuple(zip(family.spec.labels, key)), child)
        for key, child in family.children()
    ]


def _include(family: Instrument, deterministic_only: bool) -> bool:
    return family.spec.deterministic or not deterministic_only


# -- Prometheus text exposition ----------------------------------------------


def to_prometheus(
    registry: MetricRegistry, *, deterministic_only: bool = False
) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.instruments():
        if not _include(family, deterministic_only):
            continue
        spec = family.spec
        name = spec.full_name
        lines.append(f"# HELP {name} {spec.help}")
        lines.append(f"# TYPE {name} {spec.type}")
        for labels, leaf in _leaves(family):
            if isinstance(leaf, Histogram):
                for bound, cumulative in leaf.cumulative():
                    le = labels + (("le", _fmt_bound(bound)),)
                    lines.append(
                        f"{name}_bucket{_label_str(le)} {cumulative}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {_fmt(leaf.sum)}")
                lines.append(f"{name}_count{_label_str(labels)} {leaf.count}")
            else:
                assert isinstance(leaf, (Counter, Gauge))
                lines.append(f"{name}{_label_str(labels)} {_fmt(leaf.current())}")
    return "\n".join(lines) + "\n"


def exposition_state(
    registry: MetricRegistry, *, deterministic_only: bool = False
) -> dict[str, dict[str, Any]]:
    """Canonical sample state: what a scraper would see.

    ``{family_name: {"type": ..., "samples": {(sample_name, labels): value}}}``
    with labels as a sorted tuple of (key, value) pairs — the shape
    :func:`parse_prometheus` reconstructs, enabling the round-trip proof.
    """
    state: dict[str, dict[str, Any]] = {}
    for family in registry.instruments():
        if not _include(family, deterministic_only):
            continue
        spec = family.spec
        name = spec.full_name
        samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        for labels, leaf in _leaves(family):
            key = tuple(sorted(labels))
            if isinstance(leaf, Histogram):
                for bound, cumulative in leaf.cumulative():
                    le = tuple(sorted(key + (("le", _fmt_bound(bound)),)))
                    samples[(f"{name}_bucket", le)] = float(cumulative)
                samples[(f"{name}_sum", key)] = float(leaf.sum)
                samples[(f"{name}_count", key)] = float(leaf.count)
            else:
                assert isinstance(leaf, (Counter, Gauge))
                samples[(name, key)] = float(leaf.current())
        state[name] = {"type": spec.type, "samples": samples}
    return state


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse text exposition back into :func:`exposition_state` form."""
    state: dict[str, dict[str, Any]] = {}
    types: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            state[name] = {"type": kind.strip(), "samples": {}}
            continue
        if line.startswith("#"):
            continue
        sample_name, labels, value = _parse_sample(line)
        family = _family_of(sample_name, types)
        if family not in state:  # sample before its TYPE line
            raise ValueError(f"sample {sample_name!r} precedes its # TYPE line")
        state[family]["samples"][(sample_name, labels)] = value
    return state


def _family_of(sample_name: str, types: dict[str, str]) -> str:
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == HISTOGRAM:
                return base
    raise ValueError(f"sample {sample_name!r} matches no declared family")


def _parse_sample(
    line: str,
) -> tuple[str, tuple[tuple[str, str], ...], float]:
    if "{" in line:
        name, _, rest = line.partition("{")
        label_part, _, value_part = rest.partition("}")
        labels = []
        for item in label_part.split(","):
            if not item:
                continue
            key, _, quoted = item.partition("=")
            labels.append((key.strip(), quoted.strip().strip('"')))
        return name.strip(), tuple(sorted(labels)), _parse_value(value_part)
    name, _, value_part = line.partition(" ")
    return name.strip(), (), _parse_value(value_part)


def _parse_value(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


# -- JSONL snapshots ----------------------------------------------------------


def snapshot(
    registry: MetricRegistry, *, deterministic_only: bool = True
) -> dict[str, Any]:
    """The registry as a schema-stable, JSON-safe dict.

    The embedded form (bench / chaos ``metrics`` key).  Histograms carry
    cumulative ``[upper_bound, count]`` pairs with ``"+Inf"`` as the
    overflow bound; integral values are plain ints.
    """
    metrics: list[dict[str, Any]] = []
    for family in registry.instruments():
        if not _include(family, deterministic_only):
            continue
        spec = family.spec
        samples: list[dict[str, Any]] = []
        for labels, leaf in _leaves(family):
            sample: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(leaf, Histogram):
                sample["buckets"] = [
                    [_fmt_bound(bound), cumulative]
                    for bound, cumulative in leaf.cumulative()
                ]
                sample["sum"] = _num(leaf.sum)
                sample["count"] = leaf.count
            else:
                assert isinstance(leaf, (Counter, Gauge))
                sample["value"] = _num(leaf.current())
            samples.append(sample)
        metrics.append(
            {
                "name": spec.full_name,
                "type": spec.type,
                "unit": spec.unit,
                "source": spec.source,
                "paper": spec.paper,
                "samples": samples,
            }
        )
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "deterministic_only": deterministic_only,
        "metrics": metrics,
    }


def to_jsonl(
    registry: MetricRegistry, *, deterministic_only: bool = True
) -> str:
    """One JSON object per line: a header, then one line per family."""
    snap = snapshot(registry, deterministic_only=deterministic_only)
    lines = [
        json.dumps(
            {
                "kind": snap["kind"],
                "schema_version": snap["schema_version"],
                "deterministic_only": snap["deterministic_only"],
                "families": len(snap["metrics"]),
            },
            sort_keys=True,
        )
    ]
    lines += [json.dumps(m, sort_keys=True) for m in snap["metrics"]]
    return "\n".join(lines) + "\n"


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "SNAPSHOT_KIND",
    "SNAPSHOT_SCHEMA_VERSION",
    "exposition_state",
    "parse_prometheus",
    "snapshot",
    "to_jsonl",
    "to_prometheus",
]
