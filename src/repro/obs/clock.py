"""The wall-clock seam: the single sanctioned sink for host time.

Everything the platform computes is driven by *simulated* cycles, so
seeded runs stay byte-identical; but the harnesses legitimately need
host time — the bench stages time wall clock, the span timers of
:mod:`repro.obs.registry` measure replan latency, reports carry a UTC
stamp.  Concentrating those reads here gives the rispp-audit
determinism sanitizer (rule AUD002) exactly one allowed sink: any other
``time.*`` / ``datetime.now`` read inside ``src/repro`` is flagged as a
determinism hazard, because a model path that consults the host clock
can never replay byte-identically.

Keep this module tiny and boring — it exists to be allowlisted.
"""

from __future__ import annotations

import time

__all__ = ["perf_counter", "utc_stamp"]


def perf_counter() -> float:
    """Monotonic high-resolution timer (seconds, arbitrary epoch)."""
    return time.perf_counter()


def utc_stamp() -> str:
    """The current UTC time as ``YYYY-MM-DDTHH:MM:SSZ`` (report headers)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
