"""The metric catalogue: every telemetry series the platform may emit.

Like the rule registry of :mod:`repro.analysis` (``diag()`` refuses
unknown rule IDs), the observability layer refuses to create metrics it
has not declared: :meth:`repro.obs.MetricRegistry.counter` (etc.) raises
on names missing from :data:`METRICS`.  That keeps the catalogue in
``docs/observability.md``, the exporter schemas and the instrumentation
sites in sync — the CI docs job cross-checks all three.

Naming follows the Prometheus conventions: ``snake_case`` with the
``rispp_`` namespace prepended on export, ``_total`` suffix for
counters, an explicit unit in the name (``_cycles``, ``_seconds``,
``_ratio``).  Cycle-valued histograms use the shared power-of-four
bucket ladder :data:`CYCLE_BUCKETS` — rotation latencies span roughly
1e3..1e6 cycles (Table 1: 0.29–1.17 ms at 100 MHz), SI latencies
1e1..1e3, so one ladder covers both with useful resolution.

A spec marked ``deterministic=False`` (wall-clock span timers) is
excluded from deterministic snapshots so seeded reports stay
byte-identical; see :func:`repro.obs.exporters.snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Prefix prepended to every metric name on export.
NAMESPACE = "rispp"

#: Shared bucket ladder for cycle-valued histograms (powers of four,
#: 1 .. 4^10 ≈ 1.05 M cycles, +Inf implied).
CYCLE_BUCKETS: tuple[float, ...] = tuple(float(4**i) for i in range(11))

#: Bucket ladder for wall-clock span timers, in seconds.
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

#: Bucket ladder for serialized artifact sizes, in bytes (powers of
#: four, 1 KiB .. 256 MiB, +Inf implied).
BYTE_BUCKETS: tuple[float, ...] = tuple(float(1024 * 4**i) for i in range(10))

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    type: str
    help: str
    #: Unit of the recorded values (informational; also in the name).
    unit: str
    #: File that records the metric (repo-relative), for the catalogue.
    source: str
    #: Paper section the quantity reproduces or extends.
    paper: str
    labels: tuple[str, ...] = ()
    #: Histogram bucket upper bounds (+Inf implied); histograms only.
    buckets: tuple[float, ...] | None = None
    #: False for wall-clock-valued metrics, which deterministic
    #: snapshots (seeded bench/chaos reports) must exclude.
    deterministic: bool = True
    #: Allowed values per label, in the order the exporters emit them
    #: when pre-registering children (keeps zero-valued series visible).
    label_values: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def full_name(self) -> str:
        return f"{NAMESPACE}_{self.name}"


def _spec(spec: MetricSpec, into: dict[str, MetricSpec]) -> None:
    if spec.name in into:
        raise ValueError(f"duplicate metric declaration {spec.name!r}")
    if spec.type not in (COUNTER, GAUGE, HISTOGRAM):
        raise ValueError(f"unknown metric type {spec.type!r}")
    if (spec.buckets is not None) != (spec.type == HISTOGRAM):
        raise ValueError(f"buckets are for histograms only ({spec.name})")
    into[spec.name] = spec


#: All declared metric families, by (namespace-less) name.
METRICS: dict[str, MetricSpec] = {}

for _s in (
    # -- run-time manager (repro/runtime/manager.py, paper §5) ------------
    MetricSpec(
        "si_executions_total", COUNTER,
        "SI executions by dispatch mode: software fallback vs a loaded "
        "hardware molecule (the gradual SW->HW upgrade mix of Fig. 6).",
        unit="executions", source="src/repro/runtime/manager.py",
        paper="§5", labels=("mode",),
        label_values={"mode": ("sw", "hw")},
    ),
    MetricSpec(
        "si_cycles_total", COUNTER,
        "Simulated cycles spent executing SIs, by dispatch mode.",
        unit="cycles", source="src/repro/runtime/manager.py",
        paper="§5", labels=("mode",),
        label_values={"mode": ("sw", "hw")},
    ),
    MetricSpec(
        "si_latency_cycles", HISTOGRAM,
        "Per-execution SI latency: software_cycles on fallback, the "
        "chosen molecule's cycles otherwise (§3.2).",
        unit="cycles", source="src/repro/runtime/manager.py",
        paper="§3.2/§5", buckets=CYCLE_BUCKETS,
    ),
    MetricSpec(
        "replans_total", COUNTER,
        "Molecule (re)selection rounds by outcome: planned, or skipped "
        "by the no-op signature cache (§5 task b).",
        unit="replans", source="src/repro/runtime/manager.py",
        paper="§5", labels=("outcome",),
        label_values={"outcome": ("planned", "skipped")},
    ),
    MetricSpec(
        "replan_duration_seconds", HISTOGRAM,
        "Wall-clock time of one selection + rotation-planning round "
        "(span timer; excluded from deterministic snapshots).",
        unit="seconds", source="src/repro/runtime/manager.py",
        paper="§5", buckets=TIME_BUCKETS, deterministic=False,
    ),
    MetricSpec(
        "rotations_requested_total", COUNTER,
        "Rotation jobs issued to the SelectMap port, by kind: planner "
        "jobs vs fault-recovery repair writes (§5 task c).",
        unit="rotations", source="src/repro/runtime/manager.py",
        paper="§5", labels=("kind",),
        label_values={"kind": ("planned", "repair")},
    ),
    MetricSpec(
        "mode_switches_total", COUNTER,
        "SI execution-mode transitions (SW <-> molecule labels), the "
        "Fig. 6 gradual-upgrade steps.",
        unit="switches", source="src/repro/runtime/manager.py",
        paper="§5/Fig. 6",
    ),
    MetricSpec(
        "forecast_events_total", COUNTER,
        "Forecast lifecycle events delivered to the run-time manager.",
        unit="events", source="src/repro/runtime/manager.py",
        paper="§4.2/§5", labels=("event",),
        label_values={"event": ("fired", "ended")},
    ),
    # -- reconfiguration port (repro/hardware/reconfig.py, §5) ------------
    MetricSpec(
        "port_queue_depth", GAUGE,
        "Rotation jobs pending on the single serialised SelectMap port "
        "(scheduled or in flight).",
        unit="jobs", source="src/repro/hardware/reconfig.py", paper="§5",
    ),
    MetricSpec(
        "rotation_latency_cycles", HISTOGRAM,
        "Request-to-finish latency of completed rotations: port queue "
        "delay plus the atom's bitstream write time.",
        unit="cycles", source="src/repro/hardware/reconfig.py",
        paper="§5/Table 1", buckets=CYCLE_BUCKETS,
    ),
    MetricSpec(
        "rotation_queue_delay_cycles", HISTOGRAM,
        "Request-to-start serialisation delay on the SelectMap port "
        "(0 when the port was idle).",
        unit="cycles", source="src/repro/hardware/reconfig.py",
        paper="§5", buckets=CYCLE_BUCKETS,
    ),
    MetricSpec(
        "port_busy_cycles_total", COUNTER,
        "Cycles the SelectMap port spent writing bitstreams "
        "(completed jobs only).",
        unit="cycles", source="src/repro/hardware/reconfig.py",
        paper="§5/Table 1",
    ),
    # -- fabric / Atom Containers (repro/hardware/fabric.py, §3/§5) -------
    MetricSpec(
        "containers_state", GAUGE,
        "Atom Containers by lifecycle state (callback gauge, sampled at "
        "collection).",
        unit="containers", source="src/repro/hardware/fabric.py",
        paper="§3/§5", labels=("state",),
        label_values={
            "state": ("loaded", "loading", "empty", "failed", "quarantined"),
        },
    ),
    MetricSpec(
        "fabric_utilisation_ratio", GAUGE,
        "Fraction of Atom Containers holding or loading an Atom — the "
        "run-time counterpart of the alpha*GE_max area argument (Fig. 1).",
        unit="ratio", source="src/repro/hardware/fabric.py",
        paper="§2/Fig. 1",
    ),
    MetricSpec(
        "container_churn_total", COUNTER,
        "Container content turnover: rotations begun plus evictions, "
        "summed over all Atom Containers (callback counter).",
        unit="mutations", source="src/repro/hardware/container.py",
        paper="§5",
    ),
    MetricSpec(
        "container_failures_total", COUNTER,
        "Atom Containers permanently retired (injected defects plus "
        "repair-exhaustion retirements).",
        unit="containers", source="src/repro/hardware/fabric.py",
        paper="robustness extension",
    ),
    # -- forecast monitor (repro/runtime/monitor.py, §5 task a) -----------
    MetricSpec(
        "forecast_error_abs", HISTOGRAM,
        "Per-window absolute forecast error |predicted - observed| at "
        "window close (the fine-tuning signal of §5 task a).",
        unit="executions", source="src/repro/runtime/monitor.py",
        paper="§5", buckets=CYCLE_BUCKETS,
    ),
    MetricSpec(
        "forecast_windows_total", COUNTER,
        "Closed forecast windows by outcome: hit (the SI executed at "
        "least once) vs miss.",
        unit="windows", source="src/repro/runtime/monitor.py",
        paper="§5", labels=("outcome",),
        label_values={"outcome": ("hit", "miss")},
    ),
    MetricSpec(
        "forecast_drift_ratio", GAUGE,
        "Running mean absolute forecast error per closed window — drift "
        "of the compile-time expectations against reality.",
        unit="executions", source="src/repro/runtime/monitor.py",
        paper="§5",
    ),
    # -- fault injector (repro/faults/injector.py, robustness) ------------
    MetricSpec(
        "faults_injected_total", COUNTER,
        "Delivered fault events by kind (regardless of effect).",
        unit="faults", source="src/repro/faults/injector.py",
        paper="robustness extension", labels=("kind",),
        label_values={"kind": ("transient", "write_error", "permanent")},
    ),
    MetricSpec(
        "repair_cycles", HISTOGRAM,
        "Injection-to-repair latency (MTTR) per repaired container; "
        "bounded by static_repair_bound.",
        unit="cycles", source="src/repro/faults/injector.py",
        paper="robustness extension", buckets=CYCLE_BUCKETS,
    ),
    MetricSpec(
        "quarantine_depth", GAUGE,
        "Atom Containers currently quarantined pending a repair "
        "rotation.",
        unit="containers", source="src/repro/faults/injector.py",
        paper="robustness extension",
    ),
    MetricSpec(
        "degraded_cycles_total", COUNTER,
        "Cycles with at least one corruption or quarantine episode open "
        "(the fabric ran degraded).",
        unit="cycles", source="src/repro/faults/injector.py",
        paper="robustness extension",
    ),
    MetricSpec(
        "explore_states_total", COUNTER,
        "States generated by the rispp-explore bounded model checker, "
        "split into newly visited states and deduplicated revisits.",
        unit="states", source="src/repro/analysis/explore.py",
        paper="§4/§5", labels=("outcome",),
        label_values={"outcome": ("visited", "deduplicated")},
    ),
    MetricSpec(
        "explore_violations_total", COUNTER,
        "MC-rule invariant violations found by rispp-explore (first "
        "finding per rule and run).",
        unit="violations", source="src/repro/analysis/explore.py",
        paper="§4/§5",
    ),
    # -- crash recovery (repro/recovery/runtime.py, robustness) -----------
    MetricSpec(
        "recovery_snapshot_bytes", HISTOGRAM,
        "Serialized size of one whole-world recovery snapshot.  Harness "
        "telemetry, not scenario state: excluded from deterministic "
        "snapshots so resumed reports stay byte-identical.",
        unit="bytes", source="src/repro/recovery/runtime.py",
        paper="robustness extension", buckets=BYTE_BUCKETS,
        deterministic=False,
    ),
    MetricSpec(
        "recovery_snapshot_duration_seconds", HISTOGRAM,
        "Wall-clock time to capture and write one recovery snapshot "
        "(span timer; excluded from deterministic snapshots).",
        unit="seconds", source="src/repro/recovery/runtime.py",
        paper="robustness extension", buckets=TIME_BUCKETS,
        deterministic=False,
    ),
    MetricSpec(
        "recovery_journal_records_total", COUNTER,
        "Commands appended to the write-ahead recovery journal "
        "(harness telemetry; excluded from deterministic snapshots).",
        unit="records", source="src/repro/recovery/runtime.py",
        paper="robustness extension", deterministic=False,
    ),
    MetricSpec(
        "recovery_journal_replay_total", COUNTER,
        "Journaled commands replayed onto a restored snapshot during "
        "resume (harness telemetry; excluded from deterministic "
        "snapshots).",
        unit="records", source="src/repro/recovery/runtime.py",
        paper="robustness extension", deterministic=False,
    ),
    MetricSpec(
        "recovery_resumes_total", COUNTER,
        "Runs resumed from a recovery store (harness telemetry; "
        "excluded from deterministic snapshots).",
        unit="resumes", source="src/repro/recovery/runtime.py",
        paper="robustness extension", deterministic=False,
    ),
    # -- scenario daemon (repro/serve/, docs/serving.md) ------------------
    MetricSpec(
        "serve_requests_total", COUNTER,
        "HTTP requests handled by the scenario daemon, by endpoint "
        "(service telemetry; request arrival is not seeded, so the "
        "series is excluded from deterministic snapshots).",
        unit="requests", source="src/repro/serve/daemon.py",
        paper="serving extension", labels=("endpoint",),
        label_values={
            "endpoint": (
                "healthz", "readyz", "metrics", "scenario", "shutdown",
                "other",
            ),
        },
        deterministic=False,
    ),
    MetricSpec(
        "serve_scenarios_total", COUNTER,
        "Scenario requests completed by the runtime facade, by outcome "
        "(service telemetry; excluded from deterministic snapshots).",
        unit="scenarios", source="src/repro/serve/facade.py",
        paper="serving extension", labels=("outcome",),
        label_values={"outcome": ("ok", "degraded", "error")},
        deterministic=False,
    ),
    MetricSpec(
        "serve_scenario_duration_seconds", HISTOGRAM,
        "Wall-clock time from scenario submission to rendered report "
        "(span timer; excluded from deterministic snapshots).",
        unit="seconds", source="src/repro/serve/facade.py",
        paper="serving extension", buckets=TIME_BUCKETS,
        deterministic=False,
    ),
    MetricSpec(
        "serve_workers", GAUGE,
        "Size of the scenario daemon's worker process pool (service "
        "telemetry; excluded from deterministic snapshots).",
        unit="workers", source="src/repro/serve/facade.py",
        paper="serving extension", deterministic=False,
    ),
):
    _spec(_s, METRICS)

del _s


def spec_of(name: str) -> MetricSpec:
    """Look up a declared metric; raise on unknown names."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}: declare it in repro/obs/catalogue.py "
            "first (the catalogue keeps docs/observability.md and the "
            "instrumentation in sync)"
        ) from None
