"""Instrumented workloads behind ``python -m repro metrics``.

Each suite runs one of the repo's standard scenarios (the same ones the
bench harness times) with a live :class:`~repro.obs.MetricRegistry`
attached and returns it together with the runtime, so the CLI can export
whatever the run recorded.  Open forecast windows are closed at the end
of a run — a window that never closes would leave the forecast metrics
silently empty.

The runs are deterministic (simulated cycles only), so two invocations
of the same suite produce identical deterministic snapshots — the
exporter round-trip tests rely on that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .registry import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.library import SILibrary
    from ..runtime.manager import RisppRuntime


def _close_forecasts(rt: "RisppRuntime", now: int) -> int:
    """End every still-active forecast so its window is accounted."""
    for fc in list(rt.active_forecasts()):
        rt.forecast_end(fc.si_name, now, task=fc.task)
        now += 1
    return now


def _stream_suite(
    registry: MetricRegistry,
    library: "SILibrary",
    forecasts: list[tuple[str, float]],
    blocks: list[tuple[str, int]],
    *,
    containers: int,
    rounds: int,
) -> "RisppRuntime":
    from ..bench.suites import run_si_stream

    rt = run_si_stream(
        library,
        forecasts,
        blocks,
        containers=containers,
        block_rounds=rounds,
        optimize=True,
        metrics=registry,
    )
    end = rt.trace.events[-1].cycle + 1 if len(rt.trace) else 0
    _close_forecasts(rt, end)
    return rt


def run_h264_metrics(registry: MetricRegistry, *, quick: bool = False) -> "RisppRuntime":
    """The Fig. 7 macroblock SI stream, instrumented."""
    from ..apps.h264 import build_h264_library
    from ..bench.suites import H264_MACROBLOCK_CALLS

    return _stream_suite(
        registry,
        build_h264_library(),
        [("SATD_4x4", 256.0), ("DCT_4x4", 24.0), ("HT_4x4", 1.0), ("HT_2x2", 2.0)],
        list(H264_MACROBLOCK_CALLS),
        containers=6,
        rounds=4 if quick else 16,
    )


def run_aes_metrics(registry: MetricRegistry, *, quick: bool = False) -> "RisppRuntime":
    """The full AES compile-then-run flow, instrumented."""
    import warnings

    from ..apps.aes import build_aes_library, build_aes_program, default_aes_fdfs
    from ..sim.integration import compile_and_run

    def env_factory(i: int) -> dict[str, bytes]:
        return {
            "plaintext": bytes([i % 256] * 16),
            "key": bytes([(255 - i) % 256] * 16),
        }

    with warnings.catch_warnings():
        # Library advisories belong to `repro lint`, not metrics output.
        warnings.simplefilter("ignore")
        flow = compile_and_run(
            build_aes_program(),
            build_aes_library(),
            default_aes_fdfs(),
            containers=6,
            profile_env_factory=env_factory,
            run_env={"plaintext": b"\x21" * 16, "key": b"\x42" * 16},
            profile_runs=2,
            metrics=registry,
        )
    rt = flow.runtime
    end = rt.trace.events[-1].cycle + 1 if len(rt.trace) else 0
    _close_forecasts(rt, end)
    return rt


def run_synthetic_metrics(
    registry: MetricRegistry, *, quick: bool = False
) -> "RisppRuntime":
    """The generated synthetic library's SI stream, instrumented."""
    from ..bench.suites import build_synthetic_library

    return _stream_suite(
        registry,
        build_synthetic_library(),
        [("SI0", 64.0), ("SI1", 16.0), ("SI2", 4.0), ("SI3", 1.0)],
        [("SI0", 64), ("SI1", 16), ("SI2", 4), ("SI3", 1)],
        containers=5,
        rounds=5 if quick else 20,
    )


METRIC_SUITES: dict[str, Callable[..., "RisppRuntime"]] = {
    "h264": run_h264_metrics,
    "aes": run_aes_metrics,
    "synthetic": run_synthetic_metrics,
}


def run_metrics_suite(
    name: str, *, quick: bool = False
) -> tuple[MetricRegistry, "RisppRuntime"]:
    """Run one named suite instrumented; returns (registry, runtime)."""
    try:
        suite = METRIC_SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown metrics suite {name!r}; choose from {sorted(METRIC_SUITES)}"
        ) from None
    registry = MetricRegistry()
    runtime = suite(registry, quick=quick)
    return registry, runtime
