"""repro.obs — the observability layer of the rotating fabric.

A metrics registry (:class:`MetricRegistry`: counters, gauges,
cycle-bucketed histograms, wall-clock span timers) instrumented at the
run-time system's hot seams — SI dispatch and replanning
(:mod:`repro.runtime.manager`), the serialised SelectMap port
(:mod:`repro.hardware.reconfig`), Atom Container occupancy and churn
(:mod:`repro.hardware.fabric`), forecast fine-tuning error
(:mod:`repro.runtime.monitor`) and fault recovery
(:mod:`repro.faults.injector`) — with exporters for the Prometheus text
exposition format and schema-stable JSONL snapshots.

Telemetry is off by default: every instrumented constructor takes
``metrics: MetricRegistry | None = None`` and falls back to the shared
:data:`DISABLED` registry, whose instruments are no-op singletons; the
per-event disabled cost is one boolean guard (bounded < 3% by the
``metrics_overhead`` bench stage).  Pass ``MetricRegistry()`` to turn
the lights on — traces and simulation results are bit-identical either
way (metrics never feed back into decisions).

``python -m repro metrics --suite h264|aes|synthetic [--format
prom|json]`` runs one shipped workload instrumented and prints the
export; ``python -m repro bench`` / ``python -m repro chaos`` embed a
deterministic snapshot under their reports' shared ``metrics`` key.
The metric catalogue with units, sources and paper references lives in
``docs/observability.md`` and is enforced by :mod:`repro.obs.catalogue`
(undeclared metric names are rejected at instrument creation).
"""

from . import clock
from .catalogue import CYCLE_BUCKETS, METRICS, NAMESPACE, TIME_BUCKETS, MetricSpec
from .exporters import (
    SNAPSHOT_KIND,
    SNAPSHOT_SCHEMA_VERSION,
    exposition_state,
    parse_prometheus,
    snapshot,
    to_jsonl,
    to_prometheus,
)
from .registry import (
    DISABLED,
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullInstrument,
)
from .suites import METRIC_SUITES, run_metrics_suite

__all__ = [
    "CYCLE_BUCKETS",
    "DISABLED",
    "METRICS",
    "METRIC_SUITES",
    "NAMESPACE",
    "NULL",
    "SNAPSHOT_KIND",
    "SNAPSHOT_SCHEMA_VERSION",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricSpec",
    "NullInstrument",
    "clock",
    "exposition_state",
    "parse_prometheus",
    "run_metrics_suite",
    "snapshot",
    "to_jsonl",
    "to_prometheus",
]
