"""The metrics registry: counters, gauges, histograms, span timers.

Design constraints, in order:

1. **Near-zero cost when disabled.**  A disabled registry hands out one
   shared :data:`NULL` instrument whose every method is a no-op ``pass``;
   additionally the hot seams (``execute_si``, the port's per-event
   paths) guard their whole instrumentation block behind a single
   pre-resolved boolean, so the disabled path costs one attribute truth
   test per event — measured (< 3%) by the ``metrics_overhead`` bench
   stage.
2. **Deterministic exports.**  All counters/gauges/cycle histograms take
   simulated-cycle or count values, so a seeded run produces a
   byte-identical snapshot; wall-clock span timers are declared
   ``deterministic=False`` in the catalogue and excluded from
   deterministic snapshots.
3. **Declared metrics only.**  Creation validates the name and type
   against :data:`repro.obs.catalogue.METRICS` — an instrumentation site
   cannot invent a series the documentation does not know about.

Label children are pre-resolvable: ``registry.counter("x").labels(mode="hw")``
returns a bound child whose ``inc()`` is one dict-free method call, so
hot paths resolve children once at construction time, not per event.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator

from .catalogue import COUNTER, GAUGE, HISTOGRAM, MetricSpec, spec_of
from .clock import perf_counter


class _NullSpan:
    """No-op context manager returned by the disabled timer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullInstrument:
    """The shared do-nothing instrument of a disabled registry.

    Implements the full instrument surface (counter, gauge, histogram,
    child lookup, span timer) so call sites never branch on the metric
    type; every method body is a bare ``pass``/constant return.
    """

    __slots__ = ()
    enabled = False

    def labels(self, **_labels: str) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullSpan:
        return _NULL_SPAN


#: The singleton no-op instrument.
NULL = NullInstrument()


class _Span:
    """Wall-clock span recording into a histogram on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(perf_counter() - self._start)


class Instrument:
    """Base of the live instruments: label handling + spec plumbing."""

    enabled = True

    def __init__(self, spec: MetricSpec, label_values: tuple[str, ...] = ()):
        self.spec = spec
        self.label_values = label_values
        self._children: dict[tuple[str, ...], Instrument] = {}
        if not label_values and spec.labels:
            # Pre-register the declared children so zero-valued series
            # stay visible in exports (a suite that never faults still
            # exposes faults_injected_total{kind="permanent"} = 0).
            for combo in _declared_combinations(spec):
                self.labels(**dict(zip(spec.labels, combo)))

    def labels(self, **labels: str) -> "Instrument":
        """The child instrument bound to one label-value combination."""
        spec = self.spec
        if self.label_values:
            raise ValueError(
                f"metric {spec.name!r}: labels() on an already-bound child"
            )
        if tuple(sorted(labels)) != tuple(sorted(spec.labels)):
            raise ValueError(
                f"metric {spec.name!r} declares labels {spec.labels}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(labels[name] for name in spec.labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(spec, key)
            self._children[key] = child
        return child

    def _require_bound(self) -> None:
        if self.spec.labels and not self.label_values:
            raise ValueError(
                f"metric {self.spec.name!r} has labels {self.spec.labels}; "
                "bind a child with .labels(...) first"
            )

    def children(self) -> Iterator[tuple[tuple[str, ...], "Instrument"]]:
        for key in sorted(self._children):
            yield key, self._children[key]


def _declared_combinations(spec: MetricSpec) -> list[tuple[str, ...]]:
    combos: list[tuple[str, ...]] = [()]
    for label in spec.labels:
        values = spec.label_values.get(label)
        if not values:
            return []  # open-ended label set: children appear on use
        combos = [c + (v,) for c in combos for v in values]
    return combos


class Counter(Instrument):
    """Monotonically increasing count; optionally computed by a callback.

    A callback counter (``set_callback``) reads a monotone quantity the
    instrumented object already tracks (e.g. container churn) at
    collection time — zero cost on the mutation path.
    """

    def __init__(self, spec: MetricSpec, label_values: tuple[str, ...] = ()):
        self.value: float = 0.0
        self.callback: Callable[[], float] | None = None
        super().__init__(spec, label_values)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._require_bound()
        self.value += amount

    def set_callback(self, fn: Callable[[], float]) -> None:
        self._require_bound()
        self.callback = fn

    def current(self) -> float:
        return float(self.callback()) if self.callback is not None else self.value


class Gauge(Instrument):
    """Set-to-current value; optionally computed by a callback."""

    def __init__(self, spec: MetricSpec, label_values: tuple[str, ...] = ()):
        self.value: float = 0.0
        self.callback: Callable[[], float] | None = None
        super().__init__(spec, label_values)

    def set(self, value: float) -> None:
        self._require_bound()
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self._require_bound()
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._require_bound()
        self.value -= amount

    def set_callback(self, fn: Callable[[], float]) -> None:
        """Resolve the gauge at collection time instead of on set()."""
        self._require_bound()
        self.callback = fn

    def current(self) -> float:
        return float(self.callback()) if self.callback is not None else self.value


class Histogram(Instrument):
    """Cumulative-bucket histogram (Prometheus semantics) + span timer."""

    def __init__(self, spec: MetricSpec, label_values: tuple[str, ...] = ()):
        if spec.buckets is None:  # pragma: no cover - catalogue enforces
            raise ValueError(f"histogram {spec.name!r} declares no buckets")
        self.bounds: tuple[float, ...] = tuple(spec.buckets)
        #: Per-bound counts (non-cumulative; exporters accumulate), the
        #: last slot is the +Inf overflow.
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        super().__init__(spec, label_values)

    def observe(self, value: float) -> None:
        self._require_bound()
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def time(self) -> _Span:
        """Span timer: ``with histogram.time(): ...`` records seconds."""
        self._require_bound()
        return _Span(self)

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


_TYPES: dict[str, type[Instrument]] = {
    COUNTER: Counter,
    GAUGE: Gauge,
    HISTOGRAM: Histogram,
}


class MetricRegistry:
    """One run's metric instruments, by declared name.

    ``MetricRegistry(enabled=False)`` (or the module-level
    :data:`DISABLED`) hands out :data:`NULL` for every instrument — the
    near-zero-cost path the runtime uses by default.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    def _get(self, name: str, kind: str) -> Any:
        spec = spec_of(name)
        if spec.type != kind:
            raise ValueError(
                f"metric {name!r} is declared as a {spec.type}, not a {kind}"
            )
        if not self.enabled:
            return NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = _TYPES[kind](spec)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Any:
        return self._get(name, COUNTER)

    def gauge(self, name: str) -> Any:
        return self._get(name, GAUGE)

    def histogram(self, name: str) -> Any:
        return self._get(name, HISTOGRAM)

    def instruments(self) -> list[Instrument]:
        """The created instrument families, catalogue-ordered."""
        from .catalogue import METRICS

        order = {name: i for i, name in enumerate(METRICS)}
        return sorted(
            self._instruments.values(), key=lambda m: order[m.spec.name]
        )

    def get(self, name: str) -> Instrument | None:
        """The created family for ``name``, or None (tests/exporters)."""
        spec_of(name)
        return self._instruments.get(name)


#: Shared disabled registry — the default telemetry sink everywhere.
DISABLED = MetricRegistry(enabled=False)
