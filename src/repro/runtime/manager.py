"""The RISPP run-time manager (paper §5).

:class:`RisppRuntime` owns the fabric, the reconfiguration port, the
forecast monitor and the replacement policy, and performs the three §5
tasks:

a) **Monitoring** — every forecast and SI execution feeds the
   :class:`~repro.runtime.monitor.ForecastMonitor`, which fine-tunes the
   compile-time expectations;
b) **Selecting** — on every forecast change the manager re-runs molecule
   selection over all active forecasts (weighted by fine-tuned expected
   executions x priority) under the container budget;
c) **Scheduling** — the selected demand is handed to the rotation
   planner, which issues serialised rotations and reallocates containers
   across tasks.

SI execution is *gradual*: whatever Atoms happen to be loaded at call
time determine the molecule (or the software fallback) — the paper's
"Rotation in Advance" upgrade behaviour falls out of re-evaluating
``best_available`` on every execution.

With ``forecasting=False`` the manager degrades to rotate-on-demand
(rotations start only when an SI is first executed) — the baseline for
the forecast ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.library import SILibrary
from ..core.molecule import Molecule
from ..core.selection import ForecastedSI, select_greedy
from ..core.si import MoleculeImpl
from ..hardware.fabric import Fabric
from ..hardware.reconfig import ReconfigurationPort, RotationJob
from ..sim.trace import Trace
from . import events
from .events import EventBus, default_bus
from .monitor import ForecastMonitor
from .replacement import LRUPolicy, ReplacementPolicy
from .rotation import future_population, plan_rotations

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..obs import MetricRegistry


@dataclass
class RuntimeStats:
    """Aggregate counters of one run."""

    si_executions: int = 0
    sw_executions: int = 0
    hw_executions: int = 0
    si_cycles: int = 0
    rotations_requested: int = 0
    replans: int = 0
    #: Replans proven redundant (same weights, same future population)
    #: and skipped by the plan cache — see :meth:`RisppRuntime._replan`.
    replans_skipped: int = 0
    mode_switches: int = 0
    #: Accumulated only when the runtime carries an EnergyModel.
    rotation_energy_nj: float = 0.0
    execution_energy_nj: float = 0.0

    def hw_fraction(self) -> float:
        if not self.si_executions:
            return 0.0
        return self.hw_executions / self.si_executions

    def total_energy_nj(self) -> float:
        return self.rotation_energy_nj + self.execution_energy_nj


@dataclass
class _ActiveForecast:
    task: str
    si_name: str
    weight: float
    priority: float


class RisppRuntime:
    """The run-time phase: rotate instructions per forecasts and demand."""

    def __init__(
        self,
        library: SILibrary,
        num_containers: int,
        *,
        core_mhz: float = 100.0,
        bytes_per_us: float | None = None,
        policy: ReplacementPolicy | None = None,
        trace: Trace | None = None,
        monitor: ForecastMonitor | None = None,
        static_multiplicity: int = 16,
        forecasting: bool = True,
        selection=select_greedy,
        energy_model=None,
        optimize: bool = True,
        faults: "FaultInjector | None" = None,
        metrics: "MetricRegistry | None" = None,
        backend: "str | object | None" = None,
        bus: EventBus | None = None,
    ):
        from ..obs import DISABLED

        #: The runtime event bus (``docs/events.md``).  All cross-
        #: component notifications flow through :meth:`publish`; a caller
        #: may pass a pre-wired bus to add subscribers before the first
        #: event fires.
        self.bus = bus if bus is not None else default_bus()
        self.library = library
        #: The telemetry registry shared by every component of this
        #: runtime (fabric, port, monitor, fault injector) — the
        #: :data:`repro.obs.DISABLED` no-op registry unless one is given.
        self.metrics = metrics if metrics is not None else DISABLED
        self.fabric = Fabric(
            library.catalogue,
            num_containers,
            static_multiplicity=static_multiplicity,
            cache=optimize,
            metrics=self.metrics,
        )
        #: ``bytes_per_us`` overrides the SelectMap configuration rate —
        #: small-scope model checking (rispp-explore) scales rotation
        #: latencies down to single-digit cycles this way.
        port_kwargs: dict = {"core_mhz": core_mhz, "metrics": self.metrics}
        if bytes_per_us is not None:
            port_kwargs["bytes_per_us"] = bytes_per_us
        self.port = ReconfigurationPort(library.catalogue, **port_kwargs)
        self.port.attach(self)
        self.policy = policy if policy is not None else LRUPolicy()
        self.trace = trace if trace is not None else Trace()
        self.monitor = monitor if monitor is not None else ForecastMonitor()
        if metrics is not None:
            # Share the runtime's registry with a caller-provided monitor
            # (a fresh default monitor gets it too — same call).
            self.monitor.bind_metrics(metrics)
        self._bind_metrics()
        self.forecasting = forecasting
        self.selection = selection
        #: Compute backend for the selection kernels (name or instance;
        #: ``None`` defers to the library pin / process default — see
        #: :mod:`repro.core.backend`).  Only forwarded when set, so
        #: custom ``selection`` callables without a ``backend`` parameter
        #: keep working.
        self.backend = backend
        #: Optional :class:`repro.hardware.energy.EnergyModel`; when set,
        #: rotation and execution energies accumulate into the stats.
        self.energy_model = energy_model
        self.stats = RuntimeStats()
        self.task_stats: dict[str, RuntimeStats] = {}
        self._active: dict[tuple[str, str], _ActiveForecast] = {}
        self._last_mode: dict[tuple[str, str], str] = {}
        #: A previous plan could not place every demanded atom (all
        #: containers were reserved); retry when rotations complete.
        self._unplaced_for: str | None = None
        #: Hot-path caching (disable with ``optimize=False`` for the
        #: bench harness's pre-optimization baseline).
        self._optimize = optimize
        #: Memoized ``best_available`` per SI, valid for one fabric
        #: generation: between rotations the fabric does not change, so
        #: neither does the chosen implementation.
        self._impl_cache: dict[str, MoleculeImpl | None] = {}
        self._impl_cache_gen = -1
        #: Memoized reconfigurable projection per implementation object.
        self._rc_cache: dict[int, Molecule] = {}
        #: Input signature (weight vector, future population) of the last
        #: replan that issued nothing; an identical signature makes the
        #: next replan a guaranteed no-op, so it is skipped.
        self._plan_key: tuple | None = None
        #: Optional :class:`repro.faults.FaultInjector`; when set,
        #: :meth:`advance` interleaves its scheduled fault and scrub
        #: events chronologically with rotation completions.
        self._faults = faults
        if faults is not None:
            faults.attach(self)

    def _bind_metrics(self) -> None:
        """Pre-resolve instrument children for the hot paths.

        Each handle is bound once here so ``execute_si`` pays one boolean
        guard plus direct method calls — no per-event name or label
        lookups.  With telemetry disabled every handle is the shared
        no-op :data:`repro.obs.NULL` and the guard skips the block.
        """
        obs = self.metrics
        self._obs_on = obs.enabled
        execs = obs.counter("si_executions_total")
        cycles = obs.counter("si_cycles_total")
        self._m_exec_sw = execs.labels(mode="sw")
        self._m_exec_hw = execs.labels(mode="hw")
        self._m_cycles_sw = cycles.labels(mode="sw")
        self._m_cycles_hw = cycles.labels(mode="hw")
        self._m_si_latency = obs.histogram("si_latency_cycles")
        replans = obs.counter("replans_total")
        self._m_replans_planned = replans.labels(outcome="planned")
        self._m_replans_skipped = replans.labels(outcome="skipped")
        self._m_replan_time = obs.histogram("replan_duration_seconds")
        rotations = obs.counter("rotations_requested_total")
        self._m_rot_planned = rotations.labels(kind="planned")
        self._m_rot_repair = rotations.labels(kind="repair")
        self._m_mode_switches = obs.counter("mode_switches_total")
        forecasts = obs.counter("forecast_events_total")
        self._m_fc_fired = forecasts.labels(event="fired")
        self._m_fc_ended = forecasts.labels(event="ended")

    # -- events ----------------------------------------------------------

    def publish(self, event: object) -> None:
        """Dispatch ``event`` to the bus subscribers, synchronously."""
        self.bus.publish(self, event)

    # -- time ------------------------------------------------------------

    def advance(self, now: int) -> None:
        """Bring the hardware state up to cycle ``now``.

        Completions are processed *chronologically*, replanning after each
        one when earlier demands went unplaced — the manager reacts to
        each completion interrupt at its own cycle, so decisions never see
        hardware state from the future.  With a fault injector attached,
        its due fault/scrub events interleave at their own cycles too:
        completions are drained up to each fault cycle before the fault
        fires, so injections always see the hardware state of their cycle.
        """
        faults = self._faults
        if (
            self._optimize
            and self.port.is_idle()
            and (faults is None or faults.next_cycle(now) is None)
        ):
            # Nothing scheduled, in flight, or due: state cannot change.
            return
        self.publish(events.Tick(now))
        if faults is not None:
            while True:
                due = faults.next_cycle(now)
                if due is None:
                    break
                self._drain_completions_until(due)
                faults.step(self, due)
        self._drain_completions_until(now)

    def _drain_completions_until(self, limit: int) -> None:
        """Process completions chronologically, then starts, up to ``limit``.

        The attached port publishes a :class:`~repro.runtime.events.
        RotationCompleted` per retired job; the subscribed trace / fault /
        replan handlers react at the job's own cycle.
        """
        while True:
            next_completion = self.port.next_completion()
            if next_completion is None or next_completion > limit:
                break
            self.port.advance(self.fabric, next_completion)
        # Finally process rotation *starts* (evictions) up to ``limit``
        # (provably completion-free: the loop above drained them all).
        self.port.advance(self.fabric, limit)

    # -- forecasts (task a + b + c) --------------------------------------------

    def forecast(
        self,
        si_name: str,
        now: int,
        *,
        task: str = "main",
        expected: float | None = None,
        priority: float = 1.0,
    ) -> None:
        """An FC fires: register the SI demand and replan rotations."""
        if si_name not in self.library:
            raise ValueError(f"forecast for unknown SI {si_name!r}")
        if priority <= 0:
            raise ValueError("priority must be positive")
        self.advance(now)
        compile_time = expected if expected is not None else 1.0
        # The monitor fine-tune is a synchronous *query*, not an event:
        # the tuned expectation is part of the published payload.
        tuned = self.monitor.forecast_fired(task, si_name, compile_time, now)
        self._active[(task, si_name)] = _ActiveForecast(
            task=task, si_name=si_name, weight=tuned, priority=priority
        )
        self.publish(
            events.ForecastFired(
                now, task=task, si=si_name, expected=tuned, priority=priority
            )
        )

    def forecast_end(self, si_name: str, now: int, *, task: str = "main") -> None:
        """An FC states the SI is no longer needed: release and replan."""
        self.advance(now)
        self._active.pop((task, si_name), None)
        self.publish(events.ForecastEnded(now, task=task, si=si_name))

    def active_forecasts(self) -> list[_ActiveForecast]:
        return list(self._active.values())

    # -- SI execution ------------------------------------------------------------

    def execute_si(self, si_name: str, now: int, *, task: str = "main") -> int:
        """Execute one SI at cycle ``now``; returns its latency in cycles.

        Uses the fastest molecule the *currently loaded* Atoms support and
        falls back to the optimised software molecule otherwise.
        """
        si = self.library.get(si_name)
        self.advance(now)
        if not self.forecasting and (task, si_name) not in self._active:
            # Rotate-on-demand baseline: first use triggers the rotation.
            self._active[(task, si_name)] = _ActiveForecast(
                task=task, si_name=si_name, weight=1.0, priority=1.0
            )
            self.publish(
                events.ReplanRequested(now, task=task, reason="on_demand")
            )
        impl = self._best_available(si)
        if impl is None:
            cycles = si.software_cycles
            mode = "SW"
        else:
            cycles = impl.cycles
            mode = impl.label or "HW"
            self.fabric.touch_atoms(self._reconfigurable_of(impl), now)
        previous = self._last_mode.get((task, si_name))
        if previous is not None and previous != mode:
            self.stats.mode_switches += 1
            self.publish(
                events.SIModeSwitched(
                    now,
                    task=task,
                    si=si_name,
                    from_mode=previous,
                    to_mode=mode,
                    cycles=cycles,
                )
            )
        self._last_mode[(task, si_name)] = mode
        # Execution accounting is the publisher's own bookkeeping (it
        # computes the return value's energy attribution); subscribers
        # get the settled picture.
        per_task = self.task_stats.setdefault(task, RuntimeStats())
        energy = 0.0
        if self.energy_model is not None:
            active_slices = 0
            if impl is not None:
                for kind_name in impl.molecule.kinds_used():
                    kind = self.library.catalogue.get(kind_name)
                    active_slices += kind.slices * impl.molecule.count(kind_name)
            energy = self.energy_model.execution_energy_nj(active_slices, cycles)
        for stats in (self.stats, per_task):
            stats.si_executions += 1
            stats.si_cycles += cycles
            stats.execution_energy_nj += energy
            if impl is None:
                stats.sw_executions += 1
            else:
                stats.hw_executions += 1
        self.publish(
            events.SIExecuted(
                now,
                task=task,
                si=si_name,
                mode=mode,
                cycles=cycles,
                hw=impl is not None,
            )
        )
        return cycles

    def fail_container(self, container_id: int, now: int) -> None:
        """Inject a fabric defect: the container dies, the manager adapts.

        The lost Atom (loaded or in flight) is gone; active forecasts are
        replanned immediately so a replacement rotation lands in another
        container — graceful degradation instead of a wrong result.

        Out-of-range ids raise ``ValueError``.  Failing an already-failed
        container is an idempotent no-op: no state change, no duplicate
        ``CONTAINER_FAILED`` event, no spurious replan.
        """
        if not 0 <= container_id < len(self.fabric):
            raise ValueError(
                f"container id {container_id} out of range "
                f"(fabric has {len(self.fabric)} containers)"
            )
        self.advance(now)
        if self.fabric.container(container_id).failed:
            return
        self._fail_container_at(container_id, now)

    def _fail_container_at(self, container_id: int, now: int) -> str | None:
        """Retire a container at cycle ``now`` (caller already advanced).

        Shared by :meth:`fail_container` and the fault injector's
        permanent-defect / repair-exhaustion paths, which run inside
        :meth:`advance` and must not re-enter it.
        """
        lost = self.fabric.fail_container(container_id)
        # Release any reservation the port held on the dead container
        # (provably completion-free: completions up to ``now`` are
        # already drained and remaining jobs finish strictly later).
        self.port.advance(self.fabric, now)
        self.publish(
            events.ContainerFailed(now, container=container_id, lost_atom=lost)
        )
        return lost

    def _request_replan(self, now: int) -> None:
        """Replan on behalf of the active forecasts, if any."""
        self.publish(events.ReplanRequested(now, task=None, reason="fault"))

    def si_cycles(self, si_name: str, now: int) -> int:
        """Latency one execution would take right now (no side effects)."""
        self.advance(now)
        si = self.library.get(si_name)
        impl = self._best_available(si)
        return si.software_cycles if impl is None else impl.cycles

    def si_mode(self, si_name: str, now: int) -> str:
        """Current execution mode: a molecule label or ``"SW"``."""
        self.advance(now)
        impl = self._best_available(self.library.get(si_name))
        return (impl.label or "HW") if impl is not None else "SW"

    # -- internals -----------------------------------------------------------------

    def _best_available(self, si) -> MoleculeImpl | None:
        """``si.best_available`` memoized against the fabric generation.

        Between rotations the available-atom molecule cannot change, so
        the lattice scan over the SI's implementations is done once per
        (SI, fabric state) instead of once per execution.
        """
        if not self._optimize:
            return si.best_available(self.fabric.available_atoms())
        gen = self.fabric.generation
        if gen != self._impl_cache_gen:
            self._impl_cache.clear()
            self._impl_cache_gen = gen
        try:
            return self._impl_cache[si.name]
        except KeyError:
            impl = si.best_available(self.fabric.available_atoms())
            self._impl_cache[si.name] = impl
            return impl

    def _reconfigurable_of(self, impl: MoleculeImpl) -> Molecule:
        """Reconfigurable projection of an implementation, memoized.

        Implementations are immutable and owned by the library, so the
        projection is computed once per object for the runtime's life.
        """
        if not self._optimize:
            return self.library.restricted_to_reconfigurable(impl.molecule)
        key = id(impl)
        cached = self._rc_cache.get(key)
        if cached is None:
            cached = self.library.restricted_to_reconfigurable(impl.molecule)
            self._rc_cache[key] = cached
        return cached

    def _replan(self, now: int, *, triggering_task: str) -> None:
        weights: dict[str, float] = {}
        for f in self._active.values():
            # Use the monitor-tuned expectation directly (guarding only
            # against non-positive values): an SI the monitor learned is
            # rarely executed must not keep full selection weight and hog
            # Atom Containers just because its tuned weight fell below 1.
            weights[f.si_name] = weights.get(f.si_name, 0.0) + (
                max(f.weight, 0.0) * f.priority
            )
        loaded = future_population(self.fabric, self.port)
        plan_key = (tuple(sorted(weights.items())), loaded)
        if self._optimize and plan_key == self._plan_key:
            # Identical inputs to a replan that provably issued nothing:
            # selection and planning are deterministic in (weights,
            # future population), so this round is a guaranteed no-op.
            self.stats.replans_skipped += 1
            if self._obs_on:
                self._m_replans_skipped.inc()
            return
        self.stats.replans += 1
        if self._obs_on:
            self._m_replans_planned.inc()
        requests = [
            ForecastedSI(self.library.get(name), weight)
            for name, weight in sorted(weights.items())
        ]
        select_kwargs: dict = {"loaded": loaded}
        if self.backend is not None:
            select_kwargs["backend"] = self.backend
        with self._m_replan_time.time():
            result = self.selection(
                self.library, requests, len(self.fabric), **select_kwargs
            )
            plan = plan_rotations(
                self.library,
                self.fabric,
                self.port,
                result.demand,
                self.policy,
                now,
                owner=triggering_task,
                kind_priority=self._rotation_priority(
                    result.chosen, weights, loaded
                ),
            )
        for container_id, old_owner, new_owner in plan.reallocated:
            self.publish(
                events.ContainerReallocated(
                    now,
                    container=container_id,
                    from_task=old_owner,
                    to_task=new_owner,
                )
            )
        for job in plan.jobs:
            self._record_rotation_request(job, now)
        self._unplaced_for = triggering_task if plan.unplaced else None
        # Only a round that issued no rotations and left nothing unplaced
        # is memoizable: re-running it with the same weight vector and
        # future population cannot produce trace events or state changes.
        # (A round that *did* issue jobs changed the future population,
        # so its key can never match a later call anyway.)
        self._plan_key = (
            plan_key if not plan.jobs and not plan.unplaced else None
        )

    def _record_rotation_request(
        self, job: RotationJob, now: int, *, repair: bool = False
    ) -> None:
        """Publish one issued rotation request.

        Used for every planner job and for the fault injector's repair
        and retry requests, so stats and trace schema stay uniform.
        """
        self.publish(events.RotationRequested(now, job=job, repair=repair))

    def _rotation_priority(
        self, chosen: dict, weights: dict[str, float], loaded: Molecule
    ) -> list[str]:
        """Pareto-ladder rotation order for the selected molecules.

        For each selected SI (heaviest first), walk the molecules that lie
        below the chosen one in the lattice, smallest first: the atom
        kinds each ladder step *actually misses* (beyond the baseline and
        what is already loaded or in flight) are rotated in that order, so
        every completed rotation unlocks the next-faster intermediate
        molecule as soon as possible (the gradual upgrades of Fig. 6,
        T4/T5).
        """
        baseline = self.library.baseline_molecule()
        order: list[str] = []
        ranked = sorted(
            ((name, impl) for name, impl in chosen.items() if impl is not None),
            key=lambda kv: -weights.get(kv[0], 0.0),
        )
        for name, impl in ranked:
            si = self.library.get(name)
            ladder = sorted(
                (
                    i
                    for i in si.implementations
                    if i.molecule <= impl.molecule
                ),
                key=lambda i: (i.atoms(), i.cycles),
            )
            for step in ladder:
                target = self.library.restricted_to_reconfigurable(step.molecule)
                missing = (target - baseline) - loaded
                for kind in missing.kinds_used():
                    if kind not in order:
                        order.append(kind)
        return order

    def loaded_molecule(self) -> Molecule:
        """Currently usable container-resident atoms."""
        return self.fabric.loaded_reconfigurable()
