"""Atom replacement policies (paper §5, task c: "replacing Atoms to
accommodate new rotations").

When the rotation scheduler needs a container for a missing Atom, a
victim must be chosen.  Empty, unreserved containers always win; among
loaded containers only those whose Atom is *surplus* — more instances
loaded (or scheduled) than the current demand keeps — are candidates, so
a replacement never tears down an Atom the active molecules still need.
The pluggable policy then orders the candidates.
"""

from __future__ import annotations

from typing import Protocol

from ..core.molecule import Molecule
from ..hardware.container import AtomContainer
from ..hardware.fabric import Fabric
from ..hardware.reconfig import ReconfigurationPort


class ReplacementPolicy(Protocol):
    """Orders victim candidates; the first is evicted."""

    name: str

    def select(
        self, candidates: list[AtomContainer], now: int
    ) -> AtomContainer: ...


class LRUPolicy:
    """Evict the least-recently-used Atom (ties: highest container id)."""

    name = "lru"

    def select(self, candidates: list[AtomContainer], now: int) -> AtomContainer:
        return min(candidates, key=lambda c: (c.last_used, -c.container_id))


class MRUPolicy:
    """Evict the most-recently-used Atom (anti-policy for the ablation)."""

    name = "mru"

    def select(self, candidates: list[AtomContainer], now: int) -> AtomContainer:
        return max(candidates, key=lambda c: (c.last_used, c.container_id))


class HighestIdPolicy:
    """Deterministic id-based choice (the paper's Fig. 6 numbering habit)."""

    name = "highest-id"

    def select(self, candidates: list[AtomContainer], now: int) -> AtomContainer:
        return max(candidates, key=lambda c: c.container_id)


def future_atom_of(
    container: AtomContainer, port: ReconfigurationPort
) -> str | None:
    """The Atom the container will hold once pending rotations finish."""
    for job in port.pending_jobs():
        if job.container_id == container.container_id:
            return job.atom
    return container.atom


def victim_candidates(
    fabric: Fabric,
    port: ReconfigurationPort,
    keep: Molecule,
) -> list[AtomContainer]:
    """Containers that may be overwritten without hurting ``keep``.

    ``keep`` is the demand molecule (container-resident atom counts) that
    must survive.  A loaded container qualifies when its kind has more
    future instances than ``keep`` requires.
    """
    future_counts: dict[str, int] = {}
    for c in fabric.containers:
        atom = future_atom_of(c, port)
        if atom is not None:
            future_counts[atom] = future_counts.get(atom, 0) + 1
    candidates = []
    for c in fabric.containers:
        if c.failed or c.quarantined or port.is_reserved(c.container_id):
            continue
        atom = c.atom
        if atom is None:
            candidates.append(c)
            continue
        needed = keep.count(atom) if atom in keep.space else 0
        if future_counts.get(atom, 0) > needed:
            candidates.append(c)
    return candidates


def choose_victim(
    fabric: Fabric,
    port: ReconfigurationPort,
    keep: Molecule,
    policy: ReplacementPolicy,
    now: int,
) -> AtomContainer | None:
    """Pick the container to overwrite next, or ``None`` if none is safe.

    Empty containers are taken before any eviction; otherwise the policy
    ranks the surplus-atom candidates.
    """
    candidates = victim_candidates(fabric, port, keep)
    if not candidates:
        return None
    empty = [c for c in candidates if c.atom is None]
    if empty:
        return min(empty, key=lambda c: c.container_id)
    return policy.select(candidates, now)
