"""Run-time architecture (paper §5): monitor, select, rotate, replace."""

from .manager import RisppRuntime, RuntimeStats
from .monitor import ForecastMonitor, ForecastWindow, SIForecastStats
from .replacement import (
    HighestIdPolicy,
    LRUPolicy,
    MRUPolicy,
    ReplacementPolicy,
    choose_victim,
    victim_candidates,
)
from .rotation import RotationPlan, future_population, plan_rotations

__all__ = [
    "ForecastMonitor",
    "ForecastWindow",
    "HighestIdPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "ReplacementPolicy",
    "RisppRuntime",
    "RotationPlan",
    "RuntimeStats",
    "SIForecastStats",
    "choose_victim",
    "future_population",
    "plan_rotations",
    "victim_candidates",
]
