"""Rotation planning (paper §5, task c: "scheduling the rotations").

Given a *target* demand molecule (from molecule selection) and the
fabric's current + scheduled Atom population, the planner computes what
is missing — using the paper's residual operator — and issues one
rotation request per missing instance, choosing victims through the
replacement policy.  Atoms already loaded or already being rotated in are
never requested again: the planner minimises the number of rotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.library import SILibrary
from ..core.molecule import Molecule
from ..hardware.fabric import Fabric
from ..hardware.reconfig import ReconfigurationPort, RotationJob
from .replacement import ReplacementPolicy, choose_victim, future_atom_of


@dataclass
class RotationPlan:
    """The outcome of one planning round."""

    target: Molecule
    missing: Molecule
    jobs: list[RotationJob] = field(default_factory=list)
    #: Atom instances that could not be placed (no safe victim container).
    unplaced: dict[str, int] = field(default_factory=dict)
    #: Containers whose owner changed (the Fig. 6 'reallocations').
    reallocated: list[tuple[int, str | None, str | None]] = field(
        default_factory=list
    )


def future_population(fabric: Fabric, port: ReconfigurationPort) -> Molecule:
    """Container-resident atoms once every scheduled rotation finishes."""
    counts: dict[str, int] = {}
    for container in fabric.containers:
        atom = future_atom_of(container, port)
        if atom is not None:
            counts[atom] = counts.get(atom, 0) + 1
    return fabric.space.molecule(counts)


def plan_rotations(
    library: SILibrary,
    fabric: Fabric,
    port: ReconfigurationPort,
    demand: Molecule,
    policy: ReplacementPolicy,
    now: int,
    *,
    owner: str | None = None,
    kind_priority: list[str] | None = None,
) -> RotationPlan:
    """Rotate towards ``demand`` (a reconfigurable-projection molecule).

    ``demand`` counts total atom instances needed; the static baseline
    (e.g. the built-in Load lane) is subtracted, the rest must live in
    containers.  Because the single port serialises rotations, their
    *order* decides how soon each intermediate molecule becomes usable:
    ``kind_priority`` (the manager passes the Pareto-ladder order of the
    selected molecules) puts the most valuable atoms first; remaining
    kinds go largest-deficit-first so partially satisfiable demands
    degrade gracefully.
    """
    target = library.restricted_to_reconfigurable(demand)
    container_target = target - library.baseline_molecule()
    population = future_population(fabric, port)
    missing = container_target - population
    plan = RotationPlan(target=container_target, missing=missing)

    priority_rank = {
        kind: i for i, kind in enumerate(kind_priority or [])
    }
    deficits = sorted(
        ((kind, missing.count(kind)) for kind in missing.kinds_used()),
        key=lambda kv: (priority_rank.get(kv[0], len(priority_rank)), -kv[1]),
    )
    for kind, count in deficits:
        for _ in range(count):
            victim = choose_victim(fabric, port, container_target, policy, now)
            if victim is None:
                plan.unplaced[kind] = plan.unplaced.get(kind, 0) + 1
                continue
            previous_owner = victim.owner
            job = port.request(
                fabric, kind, victim.container_id, now, owner=owner
            )
            plan.jobs.append(job)
            if owner is not None and previous_owner != owner:
                plan.reallocated.append(
                    (victim.container_id, previous_owner, owner)
                )
    return plan
