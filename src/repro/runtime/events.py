"""The typed runtime event bus (the §5 control loop, decoupled).

Every cross-component notification of the run-time manager — forecasts
firing and ending, SI executions, rotation requests/completions, fault
delivery and recovery, replan triggers and clock ticks — is a frozen
event dataclass published on an :class:`EventBus`.  Components *publish*
what happened and *subscribe* to what they react to, instead of calling
each other directly:

* :class:`~repro.runtime.manager.RisppRuntime` publishes forecast /
  execution / replan / tick events and subscribes the trace recorder,
  the statistics accumulators, the telemetry counters and the replanner;
* :class:`~repro.hardware.reconfig.ReconfigurationPort` publishes
  :class:`RotationCompleted` for every retired job once attached;
* :class:`~repro.faults.injector.FaultInjector` publishes the fault
  lifecycle (:class:`FaultInjected` .. :class:`ContainerRepaired`) and
  subscribes to completions and software-fallback executions;
* the :class:`~repro.runtime.monitor.ForecastMonitor` subscribes to
  :class:`SIExecuted` / :class:`ForecastEnded` (its ``forecast_fired``
  fine-tuning remains a synchronous *query*: the tuned expectation is
  part of the :class:`ForecastFired` payload itself).

Determinism rules (the contract ``docs/events.md`` specifies and the
``EVT`` analysis rules enforce):

1. Dispatch is synchronous and single-threaded: ``publish`` runs every
   handler before returning, in ascending ``(priority, subscription
   order)`` — no queues, no threads, no reordering.
2. The trace recorder subscribes at :data:`PRIORITY_TRACE`, strictly
   before any state-mutating reaction, so the recorded event sequence is
   exactly the publication sequence (rispp-verify replays it).
3. Handlers are module-level functions of ``(runtime, event)``; all
   mutable state lives on the runtime.  This keeps the bus itself
   stateless, so structural clones of a runtime (rispp-explore's
   successor generator) may share it.
4. :class:`Tick` and :class:`ReplanRequested` are control events: they
   never record trace rows, so publishing them cannot perturb the
   golden traces.

The pre-bus direct-call sequence is preserved, hand-written, in
:func:`direct_dispatch`: the hypothesis property in
``tests/test_events_property.py`` drives arbitrary event interleavings
through both dispatchers and asserts trace equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

from ..sim.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hardware.reconfig import RotationJob
    from .manager import RisppRuntime


# ---------------------------------------------------------------------------
# Event taxonomy
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ForecastFired:
    """A Forecast point fired (§4.2): the SI is expected soon.

    ``expected`` is the monitor-tuned expectation (task a) — the
    fine-tuning query runs *before* publication so subscribers (and the
    trace) see the value the selection round will use.
    """

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.FORECAST

    cycle: int
    task: str
    si: str
    expected: float
    priority: float


@dataclass(frozen=True, slots=True)
class ForecastEnded:
    """A Forecast point retired its SI demand (§4.2)."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.FORECAST_END

    cycle: int
    task: str
    si: str


@dataclass(frozen=True, slots=True)
class SIExecuted:
    """One SI executed (§5): ``mode`` is ``"SW"`` or a molecule label."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.SI_EXECUTED

    cycle: int
    task: str
    si: str
    mode: str
    cycles: int
    #: True when a hardware molecule served the execution.
    hw: bool


@dataclass(frozen=True, slots=True)
class SIModeSwitched:
    """An SI's dispatch mode changed between executions (Fig. 6)."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.SI_MODE_SWITCH

    cycle: int
    task: str
    si: str
    from_mode: str
    to_mode: str
    cycles: int


@dataclass(frozen=True, slots=True)
class RotationRequested:
    """A rotation job was issued to the SelectMap port (§5 task c)."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.ROTATION_REQUESTED

    cycle: int
    job: "RotationJob"
    #: Fault-recovery repair write (vs an ordinary planner rotation).
    repair: bool


@dataclass(frozen=True, slots=True)
class RotationCompleted:
    """The port finished writing a bitstream; the Atom is usable."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.ROTATION_COMPLETED

    cycle: int
    job: "RotationJob"


@dataclass(frozen=True, slots=True)
class ContainerReallocated:
    """The planner moved an Atom Container between tasks (Fig. 6, T3)."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.REALLOCATION

    cycle: int
    container: int
    from_task: str | None
    to_task: str | None


@dataclass(frozen=True, slots=True)
class ContainerFailed:
    """An Atom Container was permanently retired."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.CONTAINER_FAILED

    cycle: int
    container: int
    lost_atom: str | None


@dataclass(frozen=True, slots=True)
class FaultInjected:
    """A scheduled fault event was delivered (transient / write / permanent)."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.FAULT_INJECTED

    cycle: int
    fault: str
    #: None for write errors hitting an idle port.
    container: int | None
    atom: str | None
    effect: str
    task: str = ""


@dataclass(frozen=True, slots=True)
class FaultDetected:
    """The readback scrubber found a silent corruption."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.FAULT_DETECTED

    cycle: int
    container: int
    atom: str
    injected_at: int
    latency: int


@dataclass(frozen=True, slots=True)
class ContainerQuarantined:
    """A corrupted container was barred from ordinary rotations."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.CONTAINER_QUARANTINED

    cycle: int
    container: int
    atom: str | None


@dataclass(frozen=True, slots=True)
class ContainerRepaired:
    """A repair rotation completed; the quarantine is released."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.CONTAINER_REPAIRED

    cycle: int
    task: str
    container: int
    atom: str
    injected_at: int
    mttr: int


@dataclass(frozen=True, slots=True)
class RotationRetried:
    """An aborted bitstream write was rescheduled with backoff."""

    TRACE_KIND: ClassVar[EventKind | None] = EventKind.ROTATION_RETRIED

    cycle: int
    task: str
    container: int
    atom: str
    attempt: int
    retry_at: int


@dataclass(frozen=True, slots=True)
class ReplanRequested:
    """Something invalidated the current rotation plan (control event).

    ``task`` names the task to replan on behalf of; ``None`` means
    "derive the trigger from the active forecasts" (the fault paths).
    Never recorded in the trace — replans themselves surface as the
    :class:`RotationRequested` / :class:`ContainerReallocated` events
    they produce.
    """

    TRACE_KIND: ClassVar[EventKind | None] = None

    cycle: int
    task: str | None
    reason: str


@dataclass(frozen=True, slots=True)
class Tick:
    """The runtime clock advanced into the slow path (control event).

    Published by :meth:`RisppRuntime.advance` before completions and
    faults are drained; no default subscribers — an observation hook for
    external tooling (the serve daemon, tests).  Never traced.
    """

    TRACE_KIND: ClassVar[EventKind | None] = None

    cycle: int


#: Every event type the runtime core may publish, in taxonomy order.
#: ``docs/events.md`` must name each of these (docs_check enforces it).
EVENT_TYPES: tuple[type, ...] = (
    ForecastFired,
    ForecastEnded,
    SIExecuted,
    SIModeSwitched,
    RotationRequested,
    RotationCompleted,
    ContainerReallocated,
    ContainerFailed,
    FaultInjected,
    FaultDetected,
    ContainerQuarantined,
    ContainerRepaired,
    RotationRetried,
    ReplanRequested,
    Tick,
)

#: Trace kinds recorded outside the bus: ``TASK_STEP`` belongs to the
#: multi-task simulator (:mod:`repro.sim.task`) and ``ROTATION_STARTED``
#: is reserved by the schema but not emitted by the §5 loop.
NON_BUS_KINDS: frozenset[EventKind] = frozenset(
    {EventKind.TASK_STEP, EventKind.ROTATION_STARTED}
)


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------

#: Handler signature: stateless module-level functions of the publishing
#: runtime and the event (determinism rule 3).
Handler = Callable[["RisppRuntime", object], None]

#: Canonical handler priorities, dispatched in ascending order.  The
#: gaps are deliberate: external subscribers pick free slots without
#: displacing the documented core order.
PRIORITY_TRACE = 10
PRIORITY_STATE = 20
PRIORITY_METRICS = 30
PRIORITY_FAULTS = 40
PRIORITY_REPLAN = 50


@dataclass(frozen=True, slots=True)
class Subscription:
    """One registered handler with its position in the dispatch order."""

    priority: int
    seq: int
    name: str
    handler: Handler


class EventBus:
    """Deterministic synchronous dispatch of runtime events.

    Handlers for one event type run in ascending ``(priority, seq)``
    where ``seq`` is the subscription order — re-running a program
    yields the identical handler sequence, always.  ``publish`` passes
    the owning runtime to every handler, so handlers themselves hold no
    state and one bus may serve structural clones of a runtime.
    """

    __slots__ = ("_subs", "_seq")

    def __init__(self) -> None:
        self._subs: dict[type, list[Subscription]] = {}
        self._seq = 0

    def subscribe(
        self,
        event_type: type,
        handler: Handler,
        *,
        name: str = "",
        priority: int = 100,
    ) -> Subscription:
        """Register ``handler`` for ``event_type``; returns the subscription."""
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; the taxonomy is "
                "repro.runtime.events.EVENT_TYPES"
            )
        sub = Subscription(
            priority=priority,
            seq=self._seq,
            name=name or getattr(handler, "__name__", "handler"),
            handler=handler,
        )
        self._seq += 1
        entries = self._subs.setdefault(event_type, [])
        entries.append(sub)
        entries.sort(key=lambda s: (s.priority, s.seq))
        return sub

    def unsubscribe(self, event_type: type, sub: Subscription) -> None:
        entries = self._subs.get(event_type, [])
        if sub in entries:
            entries.remove(sub)

    def subscriptions(self, event_type: type) -> tuple[Subscription, ...]:
        """The dispatch order for one event type (coherence checks)."""
        return tuple(self._subs.get(event_type, ()))

    def wiring(self) -> dict[str, tuple[tuple[int, str], ...]]:
        """``{event type name: ((priority, handler name), ...)}`` — the
        documented ordering table, in dispatch order."""
        return {
            event_type.__name__: tuple(
                (s.priority, s.name) for s in self.subscriptions(event_type)
            )
            for event_type in EVENT_TYPES
        }

    def publish(self, runtime: "RisppRuntime", event: object) -> None:
        subs = self._subs.get(type(event))
        if subs:
            for sub in list(subs):
                sub.handler(runtime, event)


# ---------------------------------------------------------------------------
# Default handlers: the §5 loop's reactions, one function per concern
# ---------------------------------------------------------------------------


def _trace_forecast(rt: "RisppRuntime", ev: ForecastFired) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.FORECAST,
        task=ev.task,
        si=ev.si,
        expected=ev.expected,
        priority=ev.priority,
    )


def _metrics_forecast(rt: "RisppRuntime", ev: ForecastFired) -> None:
    if rt._obs_on:
        rt._m_fc_fired.inc()


def _replan_forecast(rt: "RisppRuntime", ev: ForecastFired) -> None:
    if rt.forecasting:
        rt.publish(ReplanRequested(ev.cycle, task=ev.task, reason="forecast"))


def _trace_forecast_end(rt: "RisppRuntime", ev: ForecastEnded) -> None:
    rt.trace.record(ev.cycle, EventKind.FORECAST_END, task=ev.task, si=ev.si)


def _monitor_forecast_end(rt: "RisppRuntime", ev: ForecastEnded) -> None:
    rt.monitor.forecast_ended(ev.task, ev.si, ev.cycle)


def _metrics_forecast_end(rt: "RisppRuntime", ev: ForecastEnded) -> None:
    if rt._obs_on:
        rt._m_fc_ended.inc()


def _replan_forecast_end(rt: "RisppRuntime", ev: ForecastEnded) -> None:
    if rt.forecasting:
        # Freed containers may enable upgrades for the remaining SIs;
        # replan on behalf of the task(s) still holding forecasts.
        remaining = {f.task for f in rt._active.values()}
        trigger = sorted(remaining)[0] if remaining else ev.task
        rt.publish(ReplanRequested(ev.cycle, task=trigger, reason="forecast_end"))


def _trace_si_executed(rt: "RisppRuntime", ev: SIExecuted) -> None:
    if rt._optimize:
        # Lazy detail: the dict is only built if somebody reads it —
        # resolved values are identical to the eager form below.
        rt.trace.record_lazy(
            ev.cycle,
            EventKind.SI_EXECUTED,
            lambda mode=ev.mode, cycles=ev.cycles: {
                "mode": mode, "cycles": cycles,
            },
            task=ev.task,
            si=ev.si,
        )
    else:
        rt.trace.record(
            ev.cycle,
            EventKind.SI_EXECUTED,
            task=ev.task,
            si=ev.si,
            mode=ev.mode,
            cycles=ev.cycles,
        )


def _monitor_si_executed(rt: "RisppRuntime", ev: SIExecuted) -> None:
    rt.monitor.si_executed(ev.task, ev.si)


def _metrics_si_executed(rt: "RisppRuntime", ev: SIExecuted) -> None:
    if rt._obs_on:
        if ev.hw:
            rt._m_exec_hw.inc()
            rt._m_cycles_hw.inc(ev.cycles)
        else:
            rt._m_exec_sw.inc()
            rt._m_cycles_sw.inc(ev.cycles)
        rt._m_si_latency.observe(ev.cycles)


def _faults_si_executed(rt: "RisppRuntime", ev: SIExecuted) -> None:
    if not ev.hw and rt._faults is not None:
        rt._faults.note_execution(rt, rt.library.get(ev.si), ev.cycle)


def _trace_mode_switch(rt: "RisppRuntime", ev: SIModeSwitched) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.SI_MODE_SWITCH,
        task=ev.task,
        si=ev.si,
        from_mode=ev.from_mode,
        to_mode=ev.to_mode,
        cycles=ev.cycles,
    )


def _metrics_mode_switch(rt: "RisppRuntime", ev: SIModeSwitched) -> None:
    if rt._obs_on:
        rt._m_mode_switches.inc()


def _trace_rotation_requested(rt: "RisppRuntime", ev: RotationRequested) -> None:
    job = ev.job
    detail: dict = dict(
        detail_atom=job.atom,
        container=job.container_id,
        starts=job.started_at,
        finishes=job.finish_at,
        evicts=job.evicted,
    )
    if ev.repair:
        detail["repair"] = True
    rt.trace.record(
        ev.cycle,
        EventKind.ROTATION_REQUESTED,
        task=job.owner or "",
        **detail,
    )


def _stats_rotation_requested(rt: "RisppRuntime", ev: RotationRequested) -> None:
    rt.stats.rotations_requested += 1
    if rt.energy_model is not None:
        kind = rt.library.catalogue.get(ev.job.atom)
        rt.stats.rotation_energy_nj += (
            kind.bitstream_bytes * rt.energy_model.rotation_nj_per_byte
        )


def _metrics_rotation_requested(rt: "RisppRuntime", ev: RotationRequested) -> None:
    if rt._obs_on:
        (rt._m_rot_repair if ev.repair else rt._m_rot_planned).inc()


def _trace_rotation_completed(rt: "RisppRuntime", ev: RotationCompleted) -> None:
    job = ev.job
    rt.trace.record(
        job.finish_at,
        EventKind.ROTATION_COMPLETED,
        task=job.owner or "",
        detail_atom=job.atom,
        container=job.container_id,
    )


def _faults_rotation_completed(rt: "RisppRuntime", ev: RotationCompleted) -> None:
    if rt._faults is not None:
        rt._faults.on_rotation_completed(rt, ev.job)


def _replan_rotation_completed(rt: "RisppRuntime", ev: RotationCompleted) -> None:
    if rt._unplaced_for is not None and rt._active:
        trigger = rt._unplaced_for
        rt._unplaced_for = None
        rt.publish(
            ReplanRequested(ev.job.finish_at, task=trigger, reason="unplaced")
        )


def _trace_reallocation(rt: "RisppRuntime", ev: ContainerReallocated) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.REALLOCATION,
        task=ev.to_task or "",
        container=ev.container,
        from_task=ev.from_task,
        to_task=ev.to_task,
    )


def _trace_container_failed(rt: "RisppRuntime", ev: ContainerFailed) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.CONTAINER_FAILED,
        container=ev.container,
        lost_atom=ev.lost_atom,
    )


def _faults_container_failed(rt: "RisppRuntime", ev: ContainerFailed) -> None:
    if rt._faults is not None:
        rt._faults.on_container_failed(ev.container, ev.cycle)


def _replan_container_failed(rt: "RisppRuntime", ev: ContainerFailed) -> None:
    rt.publish(ReplanRequested(ev.cycle, task=None, reason="container_failed"))


def _trace_fault_injected(rt: "RisppRuntime", ev: FaultInjected) -> None:
    detail: dict = {}
    if ev.container is not None:
        detail["container"] = ev.container
    detail["fault"] = ev.fault
    if ev.effect != "none":
        # An effective fault always names its atom — ``None`` means the
        # retired container held nothing, which is itself information.
        detail["atom"] = ev.atom
    detail["effect"] = ev.effect
    rt.trace.record(ev.cycle, EventKind.FAULT_INJECTED, task=ev.task, **detail)


def _trace_fault_detected(rt: "RisppRuntime", ev: FaultDetected) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.FAULT_DETECTED,
        container=ev.container,
        atom=ev.atom,
        injected_at=ev.injected_at,
        latency=ev.latency,
    )


def _trace_quarantined(rt: "RisppRuntime", ev: ContainerQuarantined) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.CONTAINER_QUARANTINED,
        container=ev.container,
        atom=ev.atom,
    )


def _trace_repaired(rt: "RisppRuntime", ev: ContainerRepaired) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.CONTAINER_REPAIRED,
        task=ev.task,
        container=ev.container,
        atom=ev.atom,
        injected_at=ev.injected_at,
        mttr=ev.mttr,
    )


def _trace_retried(rt: "RisppRuntime", ev: RotationRetried) -> None:
    rt.trace.record(
        ev.cycle,
        EventKind.ROTATION_RETRIED,
        task=ev.task,
        container=ev.container,
        atom=ev.atom,
        attempt=ev.attempt,
        retry_at=ev.retry_at,
    )


def _replan_requested(rt: "RisppRuntime", ev: ReplanRequested) -> None:
    if ev.task is not None:
        rt._replan(ev.cycle, triggering_task=ev.task)
    elif rt._active:
        trigger = sorted({f.task for f in rt._active.values()})[0]
        rt._replan(ev.cycle, triggering_task=trigger)


#: The documented core wiring: ``(event type, priority, handler)`` in
#: taxonomy order.  :func:`default_bus` subscribes exactly these;
#: :func:`direct_dispatch` hand-writes the same sequence as direct
#: calls; the EVT coherence rules hold the two (and the runtime's live
#: bus) to each other.
DEFAULT_WIRING: tuple[tuple[type, int, Handler], ...] = (
    (ForecastFired, PRIORITY_TRACE, _trace_forecast),
    (ForecastFired, PRIORITY_METRICS, _metrics_forecast),
    (ForecastFired, PRIORITY_REPLAN, _replan_forecast),
    (ForecastEnded, PRIORITY_TRACE, _trace_forecast_end),
    (ForecastEnded, PRIORITY_STATE, _monitor_forecast_end),
    (ForecastEnded, PRIORITY_METRICS, _metrics_forecast_end),
    (ForecastEnded, PRIORITY_REPLAN, _replan_forecast_end),
    (SIExecuted, PRIORITY_TRACE, _trace_si_executed),
    (SIExecuted, PRIORITY_STATE, _monitor_si_executed),
    (SIExecuted, PRIORITY_METRICS, _metrics_si_executed),
    (SIExecuted, PRIORITY_FAULTS, _faults_si_executed),
    (SIModeSwitched, PRIORITY_TRACE, _trace_mode_switch),
    (SIModeSwitched, PRIORITY_METRICS, _metrics_mode_switch),
    (RotationRequested, PRIORITY_TRACE, _trace_rotation_requested),
    (RotationRequested, PRIORITY_STATE, _stats_rotation_requested),
    (RotationRequested, PRIORITY_METRICS, _metrics_rotation_requested),
    (RotationCompleted, PRIORITY_TRACE, _trace_rotation_completed),
    (RotationCompleted, PRIORITY_FAULTS, _faults_rotation_completed),
    (RotationCompleted, PRIORITY_REPLAN, _replan_rotation_completed),
    (ContainerReallocated, PRIORITY_TRACE, _trace_reallocation),
    (ContainerFailed, PRIORITY_TRACE, _trace_container_failed),
    (ContainerFailed, PRIORITY_FAULTS, _faults_container_failed),
    (ContainerFailed, PRIORITY_REPLAN, _replan_container_failed),
    (FaultInjected, PRIORITY_TRACE, _trace_fault_injected),
    (FaultDetected, PRIORITY_TRACE, _trace_fault_detected),
    (ContainerQuarantined, PRIORITY_TRACE, _trace_quarantined),
    (ContainerRepaired, PRIORITY_TRACE, _trace_repaired),
    (RotationRetried, PRIORITY_TRACE, _trace_retried),
    (ReplanRequested, PRIORITY_REPLAN, _replan_requested),
)


def default_bus() -> EventBus:
    """A fresh bus carrying the documented core wiring."""
    bus = EventBus()
    for event_type, priority, handler in DEFAULT_WIRING:
        bus.subscribe(event_type, handler, priority=priority)
    return bus


def direct_dispatch(rt: "RisppRuntime", event: object) -> None:
    """The pre-bus direct-call loop, preserved as executable spec.

    Hand-written ``if``/``elif`` over the taxonomy, calling the same
    reactions in the same order the inline pre-refactor runtime did.
    Installing this in place of :meth:`EventBus.publish` must yield
    byte-identical traces — the hypothesis property asserts it over
    arbitrary interleavings, seeds and backends.
    """
    if type(event) is ForecastFired:
        _trace_forecast(rt, event)
        _metrics_forecast(rt, event)
        if rt.forecasting:
            direct_dispatch(
                rt, ReplanRequested(event.cycle, task=event.task, reason="forecast")
            )
    elif type(event) is ForecastEnded:
        _trace_forecast_end(rt, event)
        _monitor_forecast_end(rt, event)
        _metrics_forecast_end(rt, event)
        if rt.forecasting:
            remaining = {f.task for f in rt._active.values()}
            trigger = sorted(remaining)[0] if remaining else event.task
            direct_dispatch(
                rt,
                ReplanRequested(event.cycle, task=trigger, reason="forecast_end"),
            )
    elif type(event) is SIExecuted:
        _trace_si_executed(rt, event)
        _monitor_si_executed(rt, event)
        _metrics_si_executed(rt, event)
        _faults_si_executed(rt, event)
    elif type(event) is SIModeSwitched:
        _trace_mode_switch(rt, event)
        _metrics_mode_switch(rt, event)
    elif type(event) is RotationRequested:
        _trace_rotation_requested(rt, event)
        _stats_rotation_requested(rt, event)
        _metrics_rotation_requested(rt, event)
    elif type(event) is RotationCompleted:
        _trace_rotation_completed(rt, event)
        _faults_rotation_completed(rt, event)
        if rt._unplaced_for is not None and rt._active:
            trigger = rt._unplaced_for
            rt._unplaced_for = None
            direct_dispatch(
                rt,
                ReplanRequested(
                    event.job.finish_at, task=trigger, reason="unplaced"
                ),
            )
    elif type(event) is ContainerReallocated:
        _trace_reallocation(rt, event)
    elif type(event) is ContainerFailed:
        _trace_container_failed(rt, event)
        _faults_container_failed(rt, event)
        direct_dispatch(
            rt, ReplanRequested(event.cycle, task=None, reason="container_failed")
        )
    elif type(event) is FaultInjected:
        _trace_fault_injected(rt, event)
    elif type(event) is FaultDetected:
        _trace_fault_detected(rt, event)
    elif type(event) is ContainerQuarantined:
        _trace_quarantined(rt, event)
    elif type(event) is ContainerRepaired:
        _trace_repaired(rt, event)
    elif type(event) is RotationRetried:
        _trace_retried(rt, event)
    elif type(event) is ReplanRequested:
        _replan_requested(rt, event)
    elif type(event) is Tick:
        pass
    else:  # pragma: no cover - authoring error
        raise ValueError(f"unknown runtime event {event!r}")
