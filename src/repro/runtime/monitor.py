"""Run-time forecast fine-tuning (paper §5, task a).

The compile-time Forecast points carry *initial* probability / distance /
execution-count values; at run time the monitor observes what actually
happens and blends the observation into the estimate with exponential
smoothing — "our forecast updating scheme maximizes the expectation /
probability of the prediction" (§2, novel contribution a/d).

One :class:`ForecastWindow` spans from a forecast firing to its end (or
the next firing): the executions observed in the window update the
expectation used the next time the same (task, SI) forecast fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import MetricRegistry


@dataclass
class ForecastWindow:
    """Executions observed since a forecast fired."""

    si_name: str
    task: str
    opened_at: int
    predicted: float
    observed: int = 0


@dataclass
class SIForecastStats:
    """Smoothed per-(task, SI) expectation and accuracy bookkeeping."""

    expectation: float
    windows: int = 0
    total_predicted: float = 0.0
    total_observed: int = 0
    #: Windows in which the forecasted SI actually executed at least once.
    hit_windows: int = 0

    def absolute_error(self) -> float:
        if not self.windows:
            return 0.0
        return abs(self.total_predicted - self.total_observed) / self.windows

    def hit_probability(self) -> float:
        """Realized probability that a fired forecast saw an execution.

        The run-time counterpart of the compile-time reach probability —
        "our forecast updating scheme maximizes the expectation /
        probability of the prediction" (§2).
        """
        if not self.windows:
            return 1.0
        return self.hit_windows / self.windows


class ForecastMonitor:
    """Observes SI executions and fine-tunes forecast expectations."""

    def __init__(
        self,
        *,
        smoothing: float = 0.5,
        metrics: "MetricRegistry | None" = None,
    ):
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing factor must be in (0, 1]")
        self.smoothing = smoothing
        self._stats: dict[tuple[str, str], SIForecastStats] = {}
        self._open: dict[tuple[str, str], ForecastWindow] = {}
        self.bind_metrics(metrics)

    def bind_metrics(self, metrics: "MetricRegistry | None") -> None:
        """(Re)bind telemetry — the runtime calls this to share its registry."""
        from ..obs import DISABLED

        obs = metrics if metrics is not None else DISABLED
        self._obs_on = obs.enabled
        self._m_error = obs.histogram("forecast_error_abs")
        self._m_hit = obs.counter("forecast_windows_total").labels(outcome="hit")
        self._m_miss = obs.counter("forecast_windows_total").labels(outcome="miss")
        self._m_drift = obs.gauge("forecast_drift_ratio")
        self._windows_seen = 0
        self._abs_error_sum = 0.0

    # -- the forecast lifecycle -------------------------------------------

    def forecast_fired(
        self, task: str, si_name: str, compile_time_expectation: float, now: int
    ) -> float:
        """A forecast fires; returns the (possibly fine-tuned) expectation.

        The first firing uses the compile-time value; later firings use
        the smoothed estimate.  An already-open window for the same
        (task, SI) is closed first — consecutive forecasts delimit each
        other.
        """
        key = (task, si_name)
        if key in self._open:
            self.forecast_ended(task, si_name, now)
        stats = self._stats.get(key)
        if stats is None:
            stats = SIForecastStats(expectation=compile_time_expectation)
            self._stats[key] = stats
        self._open[key] = ForecastWindow(
            si_name=si_name,
            task=task,
            opened_at=now,
            predicted=stats.expectation,
        )
        return stats.expectation

    def si_executed(self, task: str, si_name: str) -> None:
        """Record an execution into the open window (no-op when none)."""
        window = self._open.get((task, si_name))
        if window is not None:
            window.observed += 1

    def forecast_ended(self, task: str, si_name: str, now: int) -> None:
        """Close the window and blend the observation into the estimate."""
        key = (task, si_name)
        window = self._open.pop(key, None)
        if window is None:
            return
        stats = self._stats[key]
        stats.windows += 1
        stats.total_predicted += window.predicted
        stats.total_observed += window.observed
        if window.observed:
            stats.hit_windows += 1
        stats.expectation = (
            (1 - self.smoothing) * stats.expectation
            + self.smoothing * window.observed
        )
        if self._obs_on:
            error = abs(window.predicted - window.observed)
            self._m_error.observe(error)
            (self._m_hit if window.observed else self._m_miss).inc()
            self._windows_seen += 1
            self._abs_error_sum += error
            self._m_drift.set(self._abs_error_sum / self._windows_seen)

    # -- queries -------------------------------------------------------------

    def expectation(self, task: str, si_name: str, default: float = 0.0) -> float:
        stats = self._stats.get((task, si_name))
        return stats.expectation if stats is not None else default

    def stats(self, task: str, si_name: str) -> SIForecastStats | None:
        return self._stats.get((task, si_name))

    def open_windows(self) -> list[ForecastWindow]:
        return list(self._open.values())
