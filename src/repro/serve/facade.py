"""The runtime facade: deterministic scenarios over a process pool.

:class:`RuntimeFacade` is the programmatic service surface the HTTP
daemon (and the bench harness) sits on: it validates scenario payloads
into :class:`ScenarioRequest` objects, runs each one through
:func:`repro.faults.run_chaos_suite` in a worker process, and returns
the rendered report — the exact bytes ``repro chaos --format json``
prints for the same flags (``json.dumps(report, indent=2,
sort_keys=True)`` plus a trailing newline).

Determinism contract: a scenario's output is a pure function of its
request fields.  Workers re-pin the process-default compute backend on
every call (including back to "unpinned" when the request names none),
so pool reuse cannot leak one request's backend into the next, and two
facades with different worker counts produce byte-identical responses
for the same request.
"""

from __future__ import annotations

import json
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricRegistry


class ScenarioError(ValueError):
    """A scenario payload failed validation (HTTP 400 at the daemon)."""


#: Scenario field defaults — one source of truth shared by the request
#: validator, ``docs/serving.md`` and the serve integration tests.
#: They mirror the ``repro chaos`` flag defaults except ``quick``: a
#: *service* answers interactively, so reduced scenario sizes are the
#: default and full-size runs are opt-in (``"quick": false``).
SCENARIO_DEFAULTS: dict[str, Any] = {
    "suite": "synthetic",
    "seed": 1,
    "fault_rate": 5.0,
    "scrub_period": 10_000,
    "max_retries": 3,
    "backoff_cycles": 1_000,
    "quick": True,
    "backend": None,
}


@dataclass(frozen=True, slots=True)
class ScenarioRequest:
    """One validated scenario: the chaos campaign a worker will run."""

    suite: str
    seed: int
    fault_rate: float
    scrub_period: int
    max_retries: int
    backoff_cycles: int
    quick: bool
    backend: str | None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioRequest":
        """Validate a JSON payload; raise :class:`ScenarioError` on junk."""
        import math

        from ..core.backend import available_backends
        from ..faults import CHAOS_SUITES

        if not isinstance(payload, Mapping):
            raise ScenarioError("scenario request must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        merged = {**SCENARIO_DEFAULTS, **dict(payload)}
        suite = merged["suite"]
        if suite not in CHAOS_SUITES:
            raise ScenarioError(
                f"unknown suite {suite!r}; one of {sorted(CHAOS_SUITES)}"
            )
        try:
            seed = int(merged["seed"])
            fault_rate = float(merged["fault_rate"])
            scrub_period = int(merged["scrub_period"])
            max_retries = int(merged["max_retries"])
            backoff_cycles = int(merged["backoff_cycles"])
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed scenario field: {exc}") from None
        if seed < 1:
            raise ScenarioError(f"seed must be positive, got {seed}")
        if not math.isfinite(fault_rate) or fault_rate < 0:
            raise ScenarioError(
                f"fault_rate must be finite and non-negative, got {fault_rate}"
            )
        if scrub_period < 1:
            raise ScenarioError(
                f"scrub_period must be positive, got {scrub_period}"
            )
        if max_retries < 0:
            raise ScenarioError(
                f"max_retries cannot be negative, got {max_retries}"
            )
        if backoff_cycles < 1:
            raise ScenarioError(
                f"backoff_cycles must be positive, got {backoff_cycles}"
            )
        backend = merged["backend"]
        if backend is not None:
            if not isinstance(backend, str):
                raise ScenarioError("backend must be a string or null")
            if backend not in available_backends():
                raise ScenarioError(
                    f"backend {backend!r} is not available here; one of "
                    f"{list(available_backends())}"
                )
        quick = merged["quick"]
        if not isinstance(quick, bool):
            raise ScenarioError("quick must be a boolean")
        return cls(
            suite=suite,
            seed=seed,
            fault_rate=fault_rate,
            scrub_period=scrub_period,
            max_retries=max_retries,
            backoff_cycles=backoff_cycles,
            quick=quick,
            backend=backend,
        )

    def to_payload(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def render_scenario(request: ScenarioRequest) -> str:
    """Run one scenario and render the report — the service's unit of work.

    Byte-identical to ``repro chaos --format json`` with the same flags.
    """
    from ..core.backend import set_default_backend
    from ..faults import run_chaos_suite

    # Re-pin (or unpin) the process default on every call: worker
    # processes are reused across requests and must not inherit the
    # previous request's backend.
    set_default_backend(request.backend)
    report = run_chaos_suite(
        request.suite,
        seed=request.seed,
        fault_rate=request.fault_rate,
        quick=request.quick,
        scrub_period=request.scrub_period,
        max_retries=request.max_retries,
        backoff_cycles=request.backoff_cycles,
    )
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _pool_run(payload: dict[str, Any]) -> str:
    """Worker entry point (module-level so the pool can pickle it)."""
    return render_scenario(ScenarioRequest.from_payload(payload))


class RuntimeFacade:
    """Scenario execution sharded across a worker process pool."""

    def __init__(
        self,
        *,
        workers: int = 1,
        metrics: "MetricRegistry | None" = None,
    ):
        from ..obs import DISABLED

        if workers < 1:
            raise ValueError(f"worker count must be positive, got {workers}")
        self.workers = workers
        obs = metrics if metrics is not None else DISABLED
        self._obs_on = obs.enabled
        scenarios = obs.counter("serve_scenarios_total")
        self._m_ok = scenarios.labels(outcome="ok")
        self._m_degraded = scenarios.labels(outcome="degraded")
        self._m_error = scenarios.labels(outcome="error")
        self._m_duration = obs.histogram("serve_scenario_duration_seconds")
        if self._obs_on:
            obs.gauge("serve_workers").set(workers)
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers
        )

    # -- lifecycle --------------------------------------------------------

    def ready(self) -> bool:
        """True while the pool accepts work (the ``/readyz`` answer)."""
        return self._pool is not None

    def shutdown(self) -> None:
        """Drain and release the pool; idempotent."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RuntimeFacade":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- execution --------------------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> "Future[str]":
        """Validate ``payload`` and queue it on the pool.

        Validation runs in the caller (a :class:`ScenarioError` raises
        here, not inside the future), so the daemon can answer 400
        without burning a worker.
        """
        request = ScenarioRequest.from_payload(payload)
        pool = self._pool
        if pool is None:
            raise RuntimeError("facade is shut down")
        return pool.submit(_pool_run, request.to_payload())

    def run(self, payload: Mapping[str, Any]) -> str:
        """Run one scenario to completion; returns the rendered report."""
        from ..obs import clock

        started = clock.perf_counter()
        try:
            result = self.submit(payload).result()
        except ScenarioError:
            raise
        except Exception:
            if self._obs_on:
                self._m_error.inc()
            raise
        if self._obs_on:
            from ..faults import chaos_ok

            self._m_duration.observe(clock.perf_counter() - started)
            verdict = chaos_ok(json.loads(result))
            (self._m_ok if verdict else self._m_degraded).inc()
        return result
