"""The scenario daemon: a local HTTP/JSON front over the runtime facade.

``python -m repro serve`` starts a :class:`ScenarioServer` — a threading
HTTP server whose request threads block on the shared
:class:`~repro.serve.facade.RuntimeFacade`, so concurrent requests
shard across the worker process pool while responses stay byte-
deterministic per request.  The endpoint table is :data:`ENDPOINTS`;
``docs/serving.md`` documents each contract and the docs_check CI gate
holds the two to each other.

The daemon is deliberately boring operationally: it binds localhost by
default, speaks plain HTTP/1.1 with JSON bodies, answers health and
readiness probes, streams the Prometheus exposition of its service
registry, and shuts down gracefully (exit 0) on ``POST /shutdown`` or
SIGINT.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .facade import RuntimeFacade, ScenarioError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: The service surface: ``(method, path, description)``.  Adding an
#: endpoint here without documenting it in ``docs/serving.md`` (or vice
#: versa) fails ``repro.analysis.docs_check``.
ENDPOINTS: tuple[tuple[str, str, str], ...] = (
    ("GET", "/healthz", "liveness probe; 200 'ok' while the process serves"),
    ("GET", "/readyz", "readiness probe; 200 while the worker pool accepts "
     "scenarios, 503 during shutdown"),
    ("GET", "/metrics", "Prometheus text exposition of the service registry"),
    ("POST", "/scenario", "run one scenario request; the JSON body is the "
     "rendered chaos report, byte-identical to 'repro chaos --format json'"),
    ("POST", "/shutdown", "graceful stop: drain workers, exit 0"),
)

_MAX_BODY_BYTES = 1 << 20  # a scenario request is a small JSON object


class ScenarioServer(ThreadingHTTPServer):
    """HTTP server owning the facade and the service metric registry."""

    daemon_threads = True

    def __init__(self, host: str, port: int, *, workers: int = 1):
        from ..obs import MetricRegistry

        self.registry = MetricRegistry()
        self.facade = RuntimeFacade(workers=workers, metrics=self.registry)
        self._m_requests = self.registry.counter("serve_requests_total")
        #: Set by ``POST /shutdown``; observed by :meth:`serve_until_stopped`.
        self.stop_requested = threading.Event()
        super().__init__((host, port), _Handler)

    def count_request(self, endpoint: str) -> None:
        self._m_requests.labels(endpoint=endpoint).inc()

    def serve_until_stopped(self) -> None:
        """Serve until ``POST /shutdown`` (or ``shutdown()``), then drain."""
        stopper = threading.Thread(
            target=self._watch_stop, name="serve-stop", daemon=True
        )
        stopper.start()
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.stop_requested.set()
            self.facade.shutdown()

    def _watch_stop(self) -> None:
        self.stop_requested.wait()
        self.shutdown()


class _Handler(BaseHTTPRequestHandler):
    server: ScenarioServer  # narrowed for the route handlers
    protocol_version = "HTTP/1.1"

    # The default implementation logs every request line to stderr; a
    # long-running daemon's request log is the metrics endpoint's job.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing ---------------------------------------------------------

    def _send(
        self, status: int, body: str, content_type: str = "application/json"
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, json.dumps({"error": message}) + "\n")

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self.path == "/healthz":
            self.server.count_request("healthz")
            self._send(200, "ok\n", content_type="text/plain")
        elif self.path == "/readyz":
            self.server.count_request("readyz")
            if self.server.facade.ready():
                self._send(200, "ready\n", content_type="text/plain")
            else:
                self._send(503, "draining\n", content_type="text/plain")
        elif self.path == "/metrics":
            self.server.count_request("metrics")
            from ..obs import to_prometheus

            self._send(
                200,
                to_prometheus(self.server.registry),
                content_type="text/plain; version=0.0.4",
            )
        else:
            self.server.count_request("other")
            self._send_error(404, f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self.path == "/scenario":
            self.server.count_request("scenario")
            self._run_scenario()
        elif self.path == "/shutdown":
            self.server.count_request("shutdown")
            self._send(200, json.dumps({"stopping": True}) + "\n")
            self.server.stop_requested.set()
        else:
            self.server.count_request("other")
            self._send_error(404, f"no such endpoint: POST {self.path}")

    def _run_scenario(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error(400, "malformed Content-Length")
            return
        if length <= 0:
            self._send_error(400, "scenario request needs a JSON body")
            return
        if length > _MAX_BODY_BYTES:
            self._send_error(413, "scenario request body too large")
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error(400, f"request body is not JSON: {exc}")
            return
        try:
            body = self.server.facade.run(payload)
        except ScenarioError as exc:
            self._send_error(400, str(exc))
            return
        except RuntimeError:
            self._send_error(503, "service is shutting down")
            return
        self._send(200, body)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    workers: int = 1,
) -> int:
    """Run the daemon until shutdown; the ``repro serve`` entry point.

    Prints the bound address (``serving on http://host:port``) once
    listening — with ``port=0`` the kernel picks a free port and this
    line is how callers learn it.  Returns 0 on graceful shutdown.
    """
    import sys

    server = ScenarioServer(host, port, workers=workers)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    print(
        f"scenario workers: {workers}; endpoints: "
        + ", ".join(f"{m} {p}" for m, p, _ in ENDPOINTS),
        file=sys.stderr,
    )
    try:
        server.serve_until_stopped()
    except KeyboardInterrupt:
        server.facade.shutdown()
    finally:
        server.server_close()
    return 0
