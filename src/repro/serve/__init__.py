"""repro.serve — the long-running scenario daemon (``python -m repro serve``).

A :class:`RuntimeFacade` shards deterministic chaos scenarios across a
process pool, and a local HTTP/JSON daemon (:mod:`repro.serve.daemon`)
exposes it: POST a scenario request (suite, seed, fault-rate, backend,
fault-handling config) to ``/scenario`` and receive the exact bytes
``repro chaos --format json`` would print for the same flags — the
chaos/verify/recovery determinism contracts carry over to the service
unchanged.  ``/metrics`` streams the ``repro.obs`` Prometheus
exposition; ``/healthz`` and ``/readyz`` answer liveness and readiness.
The full API schema and endpoint contracts live in ``docs/serving.md``.
"""

from .daemon import DEFAULT_HOST, DEFAULT_PORT, ENDPOINTS, ScenarioServer, serve
from .facade import (
    SCENARIO_DEFAULTS,
    RuntimeFacade,
    ScenarioError,
    ScenarioRequest,
    render_scenario,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENDPOINTS",
    "RuntimeFacade",
    "SCENARIO_DEFAULTS",
    "ScenarioError",
    "ScenarioRequest",
    "ScenarioServer",
    "render_scenario",
    "serve",
]
