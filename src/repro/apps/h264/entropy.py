"""Entropy-coding substrate: zigzag scan, Exp-Golomb codes, run-level coding.

Completes the rate side of the encoder model: after TQ, quantized levels
are zigzag-scanned and entropy-coded.  This is a compact, bit-exact
run-level coder built on H.264's Exp-Golomb codes (the standard's CAVLC
is table-heavier but rate-equivalent to first order); it gives the
rate-distortion experiments *real bits* instead of non-zero counts.
"""

from __future__ import annotations

import numpy as np

#: The 4x4 zigzag scan order (frame coding).
ZIGZAG_4x4: tuple[tuple[int, int], ...] = (
    (0, 0), (0, 1), (1, 0), (2, 0),
    (1, 1), (0, 2), (0, 3), (1, 2),
    (2, 1), (3, 0), (3, 1), (2, 2),
    (1, 3), (2, 3), (3, 2), (3, 3),
)


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self.bits: list[int] = []

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError("a bit is 0 or 1")
        self.bits.append(bit)

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit {width} bits")
        for shift in range(width - 1, -1, -1):
            self.bits.append((value >> shift) & 1)

    def __len__(self) -> int:
        return len(self.bits)


class BitReader:
    """Sequential reader over a bit list."""

    def __init__(self, bits: list[int]) -> None:
        self.bits = list(bits)
        self.position = 0

    def read_bit(self) -> int:
        if self.position >= len(self.bits):
            raise ValueError("bitstream exhausted")
        bit = self.bits[self.position]
        self.position += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def exhausted(self) -> bool:
        return self.position >= len(self.bits)


# -- Exp-Golomb codes ----------------------------------------------------------


def write_ue(writer: BitWriter, value: int) -> None:
    """Unsigned Exp-Golomb: ``value`` >= 0 as [zeros][1][info]."""
    if value < 0:
        raise ValueError("ue(v) encodes non-negative integers")
    code = value + 1
    width = code.bit_length()
    for _ in range(width - 1):
        writer.write_bit(0)
    writer.write_bits(code, width)


def read_ue(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed Exp-Golomb code")
    info = reader.read_bits(zeros)
    return (1 << zeros) - 1 + info


def write_se(writer: BitWriter, value: int) -> None:
    """Signed Exp-Golomb via the standard's zigzag mapping."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_ue(writer, mapped)


def read_se(reader: BitReader) -> int:
    mapped = read_ue(reader)
    magnitude = (mapped + 1) // 2
    return magnitude if mapped % 2 == 1 else -magnitude


def ue_bits(value: int) -> int:
    """Length in bits of ue(value) without materialising it."""
    if value < 0:
        raise ValueError("ue(v) encodes non-negative integers")
    return 2 * (value + 1).bit_length() - 1


def se_bits(value: int) -> int:
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return ue_bits(mapped)


# -- run-level block coding --------------------------------------------------------


def zigzag_scan(block) -> list[int]:
    arr = np.asarray(block, dtype=np.int64)
    if arr.shape != (4, 4):
        raise ValueError(f"expected a 4x4 block, got {arr.shape}")
    return [int(arr[i, j]) for i, j in ZIGZAG_4x4]


def inverse_zigzag(values: list[int]) -> np.ndarray:
    if len(values) != 16:
        raise ValueError("a 4x4 scan has 16 values")
    out = np.zeros((4, 4), dtype=np.int64)
    for value, (i, j) in zip(values, ZIGZAG_4x4):
        out[i, j] = value
    return out


def encode_block(block, writer: BitWriter | None = None) -> BitWriter:
    """Run-level code one quantized 4x4 block.

    Format: ue(number of non-zero levels), then per non-zero coefficient
    in scan order: ue(run of preceding zeros), se(level).
    """
    writer = writer if writer is not None else BitWriter()
    scan = zigzag_scan(block)
    nonzero = [(i, v) for i, v in enumerate(scan) if v != 0]
    write_ue(writer, len(nonzero))
    previous = -1
    for index, value in nonzero:
        write_ue(writer, index - previous - 1)
        write_se(writer, value)
        previous = index
    return writer


def decode_block(reader: BitReader) -> np.ndarray:
    """Inverse of :func:`encode_block`."""
    count = read_ue(reader)
    if count > 16:
        raise ValueError("a 4x4 block has at most 16 coefficients")
    scan = [0] * 16
    position = -1
    for _ in range(count):
        run = read_ue(reader)
        position += run + 1
        if position >= 16:
            raise ValueError("run-level data overruns the block")
        scan[position] = read_se(reader)
    return inverse_zigzag(scan)


def block_bits(block) -> int:
    """Bit cost of one block without materialising the bitstream."""
    scan = zigzag_scan(block)
    nonzero = [(i, v) for i, v in enumerate(scan) if v != 0]
    bits = ue_bits(len(nonzero))
    previous = -1
    for index, value in nonzero:
        bits += ue_bits(index - previous - 1) + se_bits(value)
        previous = index
    return bits


def macroblock_bits(level_grid) -> int:
    """Bit cost of a 4x4 grid of quantized luma blocks."""
    total = 0
    for row in level_grid:
        for block in row:
            total += block_bits(block)
    return total
