"""Synthetic video workload (substitute for the paper's test sequences).

The paper drives its case study with real H.264 encoder inputs; offline
we synthesise frames with the statistics that matter for the SI pipeline:
smooth luminance gradients (so DCT coefficients concentrate in DC),
texture noise (so SATD values are non-trivial) and global motion between
frames (so the 16-candidate motion search of Fig. 7 has a meaningful
minimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import CHROMA_SIZE, MACROBLOCK_SIZE, extract_block

#: Fig. 7: the SATD is computed for 16 candidate sub-blocks.
CANDIDATES_PER_SUBBLOCK = 16
#: Sub-blocks per macroblock (16x16 luma in 4x4 pieces).
SUBBLOCKS_PER_MACROBLOCK = 16


def synthetic_frame(
    height: int = 48, width: int = 48, *, seed: int = 0, shift: int = 0
) -> np.ndarray:
    """A luminance frame: gradient + texture + a diagonal feature.

    ``shift`` translates the content, emulating global motion so that a
    shifted reference frame contains good prediction candidates.
    """
    if height < MACROBLOCK_SIZE or width < MACROBLOCK_SIZE:
        raise ValueError("frame must hold at least one macroblock")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    gradient = (x + 2 * y + shift * 3) % 256
    texture = rng.integers(-12, 13, size=(height, width))
    stripe = 40 * (((x - y + shift) // 8) % 2)
    frame = np.clip(gradient * 0.6 + stripe + texture + 40, 0, 255)
    return frame.astype(np.int64)


def chroma_from_luma(luma: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Derive 2:1 subsampled Cb/Cr planes from a luma plane."""
    sub = luma[::2, ::2]
    cb = np.clip(128 + (sub - 128) // 3, 0, 255).astype(np.int64)
    cr = np.clip(128 - (sub - 128) // 4, 0, 255).astype(np.int64)
    return cb, cr


@dataclass
class MacroblockData:
    """Everything Fig. 7's pipeline needs for one macroblock."""

    luma: np.ndarray  # 16x16 original pixels
    cb: np.ndarray  # 8x8 chroma
    cr: np.ndarray  # 8x8 chroma
    #: candidates[s] is the list of 16 prediction 4x4 blocks for sub-block s
    #: (sub-blocks in raster order).
    candidates: list[list[np.ndarray]]

    def __post_init__(self) -> None:
        if self.luma.shape != (MACROBLOCK_SIZE, MACROBLOCK_SIZE):
            raise ValueError("luma macroblock must be 16x16")
        if self.cb.shape != (CHROMA_SIZE, CHROMA_SIZE):
            raise ValueError("Cb block must be 8x8")
        if self.cr.shape != (CHROMA_SIZE, CHROMA_SIZE):
            raise ValueError("Cr block must be 8x8")
        if len(self.candidates) != SUBBLOCKS_PER_MACROBLOCK:
            raise ValueError("need candidate lists for all 16 sub-blocks")
        for cand_list in self.candidates:
            if len(cand_list) != CANDIDATES_PER_SUBBLOCK:
                raise ValueError("each sub-block needs 16 candidates")


def candidate_offsets() -> list[tuple[int, int]]:
    """The 16 motion-search displacements (a 4x4 grid around the origin)."""
    return [(dy, dx) for dy in (-2, -1, 0, 1) for dx in (-2, -1, 0, 1)]


def build_macroblock(
    current: np.ndarray,
    reference: np.ndarray,
    top: int,
    left: int,
) -> MacroblockData:
    """Assemble one macroblock's data from current and reference frames.

    Candidate predictions for each 4x4 sub-block are the 16 windows of the
    reference frame displaced by :func:`candidate_offsets` (clamped to the
    frame); this is the "SATD ... calculated first for 16 candidate
    sub-blocks" stage of Fig. 7.
    """
    luma = extract_block(current, top, left, MACROBLOCK_SIZE)
    cb_full, cr_full = chroma_from_luma(current)
    cb = extract_block(cb_full, top // 2, left // 2, CHROMA_SIZE)
    cr = extract_block(cr_full, top // 2, left // 2, CHROMA_SIZE)
    h, w = reference.shape
    candidates: list[list[np.ndarray]] = []
    for sub in range(SUBBLOCKS_PER_MACROBLOCK):
        sy, sx = divmod(sub, 4)
        base_top = top + 4 * sy
        base_left = left + 4 * sx
        cand_list = []
        for dy, dx in candidate_offsets():
            cand_top = min(max(base_top + dy, 0), h - 4)
            cand_left = min(max(base_left + dx, 0), w - 4)
            cand_list.append(extract_block(reference, cand_top, cand_left, 4))
        candidates.append(cand_list)
    return MacroblockData(luma=luma, cb=cb, cr=cr, candidates=candidates)


def macroblock_stream(
    num_macroblocks: int, *, seed: int = 0
) -> list[MacroblockData]:
    """A stream of macroblocks from a synthetic two-frame sequence."""
    if num_macroblocks < 1:
        raise ValueError("need at least one macroblock")
    # Leave a one-macroblock margin on every side so that motion-search
    # candidates never clamp at the frame border.
    side = 16 * (int(np.ceil(np.sqrt(num_macroblocks))) + 2)
    reference = synthetic_frame(side, side, seed=seed, shift=0)
    current = synthetic_frame(side, side, seed=seed + 1, shift=1)
    mbs: list[MacroblockData] = []
    positions = [
        (top, left)
        for top in range(16, side - 16, 16)
        for left in range(16, side - 16, 16)
    ]
    for top, left in positions[:num_macroblocks]:
        mbs.append(build_macroblock(current, reference, top, left))
    if len(mbs) < num_macroblocks:
        raise ValueError("frame too small for the requested macroblock count")
    return mbs
