"""Reference H.264 transform kernels (golden models).

Pure-numpy implementations of the three transforms the paper's Atoms
accelerate (§6, Fig. 9: "There are three different transforms used in
ITU-T H.264 ... 2x2 Hadamard Transform, 4x4 Integer Transform, and 4x4
Hadamard Transform. The addition and subtraction flow is identical in
all three transforms"), plus the SATD and SAD cost functions of motion
estimation.

These are the *optimised software molecules*' functional reference; the
Atom-composed implementations in :mod:`repro.apps.h264.sis` must be
bit-exact against them.
"""

from __future__ import annotations

import numpy as np

#: Forward 4x4 integer-DCT matrix of H.264 (core transform).
CF4 = np.array(
    [
        [1, 1, 1, 1],
        [2, 1, -1, -2],
        [1, -1, -1, 1],
        [1, -2, 2, -1],
    ],
    dtype=np.int64,
)

#: 4x4 Hadamard matrix (luma-DC transform).
H4 = np.array(
    [
        [1, 1, 1, 1],
        [1, 1, -1, -1],
        [1, -1, -1, 1],
        [1, -1, 1, -1],
    ],
    dtype=np.int64,
)

#: 2x2 Hadamard matrix (chroma-DC transform).
H2 = np.array([[1, 1], [1, -1]], dtype=np.int64)


def _as_block(block, size: int) -> np.ndarray:
    arr = np.asarray(block, dtype=np.int64)
    if arr.shape != (size, size):
        raise ValueError(f"expected a {size}x{size} block, got shape {arr.shape}")
    return arr


def dct_4x4(block) -> np.ndarray:
    """Forward H.264 4x4 integer transform ``Cf . X . Cf^T``."""
    x = _as_block(block, 4)
    return CF4 @ x @ CF4.T


def hadamard_4x4(block) -> np.ndarray:
    """H.264 luma-DC Hadamard transform ``(H . X . H^T) / 2``.

    The division by two (with rounding towards minus infinity, matching
    an arithmetic right shift — the ``>> 1`` elements in the Transform
    Atom's HT mode, Fig. 9) keeps the DC coefficients in 16-bit range.
    """
    x = _as_block(block, 4)
    return (H4 @ x @ H4.T) >> 1


def hadamard_2x2(block) -> np.ndarray:
    """H.264 chroma-DC 2x2 Hadamard transform ``H . X . H^T``."""
    x = _as_block(block, 2)
    return H2 @ x @ H2.T


def residual(original, prediction) -> np.ndarray:
    """Element-wise difference block (the QuadSub Atom's function)."""
    a = np.asarray(original, dtype=np.int64)
    b = np.asarray(prediction, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a - b


def sad_4x4(original, prediction) -> int:
    """Sum of Absolute Differences over a 4x4 block (integer-pel ME cost)."""
    return int(np.abs(residual(_as_block(original, 4), _as_block(prediction, 4))).sum())


def satd_4x4(original, prediction) -> int:
    """4x4 Sum of Absolute Transformed Differences.

    The standard H.264 encoder cost: Hadamard-transform the residual and
    sum the absolute coefficients, halved (the ``(sum + 1) >> 1`` rounding
    of JM/x264 reduced to ``>> 1``; consistent halving on both sides of a
    comparison does not change motion-vector decisions).
    """
    diff = residual(_as_block(original, 4), _as_block(prediction, 4))
    transformed = H4 @ diff @ H4.T
    return int(np.abs(transformed).sum()) >> 1


def dc_coefficients(coeff_blocks) -> np.ndarray:
    """Collect the DC coefficient of each 4x4 coefficient block.

    ``coeff_blocks`` is a 4x4 grid (list of lists) of transformed 4x4
    blocks for the luma HT, or a 2x2 grid for the chroma HT.
    """
    rows = len(coeff_blocks)
    out = np.zeros((rows, rows), dtype=np.int64)
    for i in range(rows):
        if len(coeff_blocks[i]) != rows:
            raise ValueError("DC grid must be square")
        for j in range(rows):
            out[i, j] = np.asarray(coeff_blocks[i][j])[0, 0]
    return out
