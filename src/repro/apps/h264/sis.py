"""The H.264 Special Instructions: functional executors + Table 2 catalogue.

Two views of the same four SIs (SATD_4x4, DCT_4x4, HT_4x4, HT_2x2, plus
the SAD extension the paper sketches):

* **Functional**: :func:`si_dct_4x4` & friends execute the SI on real
  data by composing the behavioural Atom data paths of
  :mod:`repro.apps.h264.atoms` — bit-exact against the reference
  transforms (tests enforce it).
* **Architectural**: :func:`build_h264_library` returns the
  :class:`~repro.core.library.SILibrary` with the paper's Table 2
  molecule catalogue — 30 molecules whose cycles row is reproduced
  verbatim.

Table 2 reconstruction (the supplied paper text is OCR-garbled in the
QuadSub/Pack/SATD/Add/Store rows; the Load and Transform rows and the
cycles row survived intact): we fixed the remaining rows as the unique
monotone assignment consistent with (a) the intact rows, (b) the Fig. 11
series (SATD 544/24/20/18, DCT 488/24/19/15, HT 298/22/22/17 cycles at
Opt.SW/4/5/6 Atoms), and (c) Fig. 13's x-axis reaching 18 atoms for the
largest SATD molecule.  Consistency requires the platform to offer one
built-in Load lane in the static fabric (``baseline=1``) with further
Load atoms rotatable into containers — this reproduces all nine Fig. 11
points exactly with the container configurations
``4 Atoms = {QuadSub, Pack, Transform, SATD}``, ``5 = +Load``,
``6 = +Transform``.
"""

from __future__ import annotations

import numpy as np

from ...core.atom import AtomCatalogue, AtomKind
from ...core.library import SILibrary
from ...core.molecule import Molecule
from ...core.si import MoleculeImpl, SpecialInstruction
from ...hardware.atom_specs import TABLE1_SPECS

from .atoms import AtomExecutionCounter

# ---------------------------------------------------------------------------
# Functional SI executors (compose the behavioural atoms)
# ---------------------------------------------------------------------------


def _two_pass_transform(
    block, mode: str, counter: AtomExecutionCounter, *, shift_second_pass: bool
) -> np.ndarray:
    """Row pass -> Pack transpose -> column pass, on packed row pairs.

    With the 16-bit storage pattern each Transform execution processes two
    packed rows at once, so a full 4x4 transform costs 4 Transform + 4
    Pack executions — exactly the paper's statement for HT_4x4.
    """
    x = np.asarray(block, dtype=np.int64)
    if x.shape != (4, 4):
        raise ValueError(f"expected a 4x4 block, got {x.shape}")
    # Row pass: 2 packed executions covering 4 rows -> A = X . C^T.
    a = np.zeros((4, 4), dtype=np.int64)
    for pair in range(2):
        for row in (2 * pair, 2 * pair + 1):
            a[row, :] = transforms_butterfly(counter, x[row, :], mode, False, row % 2)
    # Pack transpose: 4 executions, one per column of A.
    columns = [counter.pack(list(a), j) for j in range(4)]
    # Column pass: 2 packed executions covering 4 columns -> Y = C . A.
    y = np.zeros((4, 4), dtype=np.int64)
    for j, col in enumerate(columns):
        y[:, j] = transforms_butterfly(
            counter, col, mode, shift_second_pass, j % 2
        )
    return y


def transforms_butterfly(
    counter: AtomExecutionCounter, vec, mode: str, shift: bool, lane: int
):
    """One 1-D butterfly; lane 0 of a packed pair charges the execution.

    The Transform atom's 32-bit ports carry two 16-bit coefficients, so
    two 1-D butterflies share one atom execution; we count the execution
    on the even lane and ride along on the odd lane.
    """
    if lane == 0:
        return counter.transform(vec, mode=mode, ht_shift=shift)
    # Odd lane: same silicon pass, no extra execution counted.
    from .atoms import transform_atom

    return transform_atom(vec, mode=mode, ht_shift=shift)


def si_dct_4x4(residual_block, counter: AtomExecutionCounter | None = None) -> np.ndarray:
    """DCT_4x4 SI: forward 4x4 integer transform of a residual block."""
    counter = counter if counter is not None else AtomExecutionCounter()
    return _two_pass_transform(residual_block, "DCT", counter, shift_second_pass=False)


def si_ht_4x4(dc_block, counter: AtomExecutionCounter | None = None) -> np.ndarray:
    """HT_4x4 SI: 4x4 Hadamard transform of the luma DC coefficients."""
    counter = counter if counter is not None else AtomExecutionCounter()
    return _two_pass_transform(dc_block, "HT", counter, shift_second_pass=True)


def si_ht_2x2(dc_block, counter: AtomExecutionCounter | None = None) -> np.ndarray:
    """HT_2x2 SI: 2x2 Hadamard of the chroma DC coefficients.

    A single Transform execution computes the whole 2x2 transform (the
    four inputs fill the atom's four lanes); the SI "constitutes only one
    Atom" (§6).
    """
    counter = counter if counter is not None else AtomExecutionCounter()
    x = np.asarray(dc_block, dtype=np.int64)
    if x.shape != (2, 2):
        raise ValueError(f"expected a 2x2 block, got {x.shape}")
    y0, y1, y2, y3 = counter.transform(
        [x[0, 0], x[0, 1], x[1, 0], x[1, 1]], mode="HT"
    )
    return np.array([[y0, y3], [y1, y2]], dtype=np.int64)


def si_satd_4x4(
    original, prediction, counter: AtomExecutionCounter | None = None
) -> int:
    """SATD_4x4 SI: Hadamard-transform the residual, sum absolutes, halve.

    Composition per Fig. 8: QuadSub residuals -> Transform (HT rows) ->
    Pack -> Transform (HT columns) -> SATD accumulation.
    """
    counter = counter if counter is not None else AtomExecutionCounter()
    orig = np.asarray(original, dtype=np.int64)
    pred = np.asarray(prediction, dtype=np.int64)
    if orig.shape != (4, 4) or pred.shape != (4, 4):
        raise ValueError("SATD_4x4 operates on 4x4 blocks")
    diff = np.zeros((4, 4), dtype=np.int64)
    for row in range(4):
        diff[row, :] = counter.quadsub(orig[row, :], pred[row, :])
    transformed = _two_pass_transform(diff, "HT", counter, shift_second_pass=False)
    total = 0
    for row in range(4):
        total += counter.satd(transformed[row, :])
    return total >> 1


def si_sad_4x4(
    original, prediction, counter: AtomExecutionCounter | None = None
) -> int:
    """SAD SI: QuadSub + SATD atoms combined (integer-pel ME cost, §6)."""
    counter = counter if counter is not None else AtomExecutionCounter()
    orig = np.asarray(original, dtype=np.int64)
    pred = np.asarray(prediction, dtype=np.int64)
    if orig.shape != (4, 4) or pred.shape != (4, 4):
        raise ValueError("SAD_4x4 operates on 4x4 blocks")
    total = 0
    for row in range(4):
        diff = counter.quadsub(orig[row, :], pred[row, :])
        total += counter.satd(diff)
    return total


# ---------------------------------------------------------------------------
# Atom catalogue (Table 1 + static helpers + the rotatable Load lane)
# ---------------------------------------------------------------------------

#: Synthetic bitstream size for the rotatable Load atom (not in Table 1;
#: sized like the other logic-only atoms).
LOAD_BITSTREAM_BYTES = 57_500


def build_h264_catalogue() -> AtomCatalogue:
    """The case-study atom architecture.

    ``QuadSub``/``Pack``/``Transform``/``SATD`` carry their Table 1
    hardware figures; ``Load`` is rotatable with one static-fabric
    baseline lane; ``Add``/``Store`` are static helpers.
    """
    def from_table1(name: str, description: str) -> AtomKind:
        spec = TABLE1_SPECS[name]
        return AtomKind(
            name,
            reconfigurable=True,
            bitstream_bytes=spec.bitstream_bytes,
            slices=spec.slices,
            luts=spec.luts,
            description=description,
        )

    return AtomCatalogue.of(
        [
            AtomKind(
                "Load",
                reconfigurable=True,
                bitstream_bytes=LOAD_BITSTREAM_BYTES,
                baseline=1,
                description="operand fetch lane; one lane built into the static fabric",
            ),
            from_table1("QuadSub", "four parallel 16-bit subtractions"),
            from_table1("Pack", "Pack_LSB_MSB: packed-register transposition"),
            from_table1("Transform", "shared DCT/HT butterfly (Fig. 9)"),
            from_table1("SATD", "absolute-value adder tree"),
            AtomKind("Add", reconfigurable=False, description="static adder"),
            AtomKind("Store", reconfigurable=False, description="static store port"),
        ]
    )


# ---------------------------------------------------------------------------
# Table 2: the molecule catalogue
# ---------------------------------------------------------------------------

#: (Load, QuadSub, Pack, Transform, SATD, Add, Store) -> cycles.
#: Column order follows the paper left to right; the cycles row is the
#: paper's verbatim.
TABLE2: dict[str, list[tuple[tuple[int, int, int, int, int, int, int], int]]] = {
    "HT_2x2": [
        ((1, 0, 0, 1, 0, 1, 1), 5),
    ],
    "HT_4x4": [
        ((1, 0, 1, 1, 0, 0, 0), 22),
        ((1, 0, 1, 2, 0, 0, 0), 17),
        ((2, 0, 2, 1, 0, 0, 0), 17),
        ((2, 0, 2, 2, 0, 0, 0), 12),
        ((4, 0, 4, 2, 0, 0, 0), 11),
        ((4, 0, 4, 4, 0, 0, 0), 8),
    ],
    "DCT_4x4": [
        ((1, 0, 1, 1, 0, 0, 0), 24),
        ((1, 0, 1, 2, 0, 0, 0), 23),
        ((2, 0, 1, 1, 0, 0, 0), 19),
        ((2, 0, 1, 2, 0, 0, 0), 15),
        ((4, 0, 2, 1, 0, 0, 0), 18),
        ((4, 0, 2, 2, 0, 0, 0), 12),
        ((4, 0, 4, 2, 0, 0, 0), 12),
        ((4, 0, 4, 4, 0, 0, 0), 9),
    ],
    "SATD_4x4": [
        ((1, 1, 1, 1, 1, 0, 0), 24),
        ((1, 1, 1, 2, 1, 0, 0), 22),
        ((1, 1, 1, 2, 2, 0, 0), 22),
        ((2, 1, 1, 1, 1, 0, 0), 20),
        ((2, 1, 1, 2, 1, 0, 0), 18),
        ((2, 1, 1, 2, 2, 0, 0), 18),
        ((4, 2, 1, 1, 1, 0, 0), 17),
        ((4, 2, 1, 2, 1, 0, 0), 15),
        ((4, 2, 1, 2, 2, 0, 0), 14),
        ((4, 2, 2, 2, 1, 0, 0), 15),
        ((4, 2, 2, 2, 2, 0, 0), 14),
        ((4, 4, 2, 2, 1, 0, 0), 14),
        ((4, 4, 2, 4, 1, 0, 0), 13),
        ((4, 4, 4, 4, 1, 0, 0), 13),
        ((4, 4, 4, 4, 2, 0, 0), 12),
    ],
}

#: Optimised-software latencies (Fig. 11's "Opt. SW" bars; HT_2x2 and SAD
#: are not plotted there and use consistent estimates).
SOFTWARE_CYCLES: dict[str, int] = {
    "SATD_4x4": 544,
    "DCT_4x4": 488,
    "HT_4x4": 298,
    "HT_2x2": 60,
    "SAD_4x4": 130,
}

#: The SAD extension SI (§6: "QuadSub and SATD can also be combined to
#: form an SI that can execute the SAD operation used in Integer-Pixel
#: Motion Estimation").  Not part of Table 2.
SAD_MOLECULES: list[tuple[tuple[int, int, int, int, int, int, int], int]] = [
    ((1, 1, 0, 0, 1, 0, 0), 10),
    ((2, 2, 0, 0, 2, 0, 0), 6),
    ((4, 4, 0, 0, 4, 0, 0), 4),
]

_KIND_ORDER = ("Load", "QuadSub", "Pack", "Transform", "SATD", "Add", "Store")


def _impls(
    space, rows: list[tuple[tuple[int, int, int, int, int, int, int], int]]
) -> list[MoleculeImpl]:
    impls = []
    for counts, cycles in rows:
        molecule = space.molecule(dict(zip(_KIND_ORDER, counts)))
        label = " ".join(
            f"{k[0]}{c}" for k, c in zip(_KIND_ORDER, counts) if c
        )
        impls.append(MoleculeImpl(molecule, cycles, label=label))
    return impls


def build_h264_library(*, include_sad: bool = False) -> SILibrary:
    """The case-study SI library over :func:`build_h264_catalogue`.

    ``include_sad`` adds the SAD extension SI (off by default so the
    Table 2 / Fig. 11-13 benches see exactly the paper's catalogue).
    """
    catalogue = build_h264_catalogue()
    space = catalogue.space
    sis = [
        SpecialInstruction(
            name,
            space,
            SOFTWARE_CYCLES[name],
            _impls(space, rows),
            description=f"H.264 {name} special instruction",
        )
        for name, rows in TABLE2.items()
    ]
    if include_sad:
        sis.append(
            SpecialInstruction(
                "SAD_4x4",
                space,
                SOFTWARE_CYCLES["SAD_4x4"],
                _impls(space, SAD_MOLECULES),
                description="integer-pel ME cost from QuadSub + SATD atoms",
            )
        )
    return SILibrary(catalogue, sis)


# ---------------------------------------------------------------------------
# The Fig. 11 / Fig. 12 platform configurations
# ---------------------------------------------------------------------------

#: Reconfigurable atoms loaded in containers for each published
#: configuration (on top of the static baseline Load lane).
REFERENCE_CONFIGS: dict[str, dict[str, int]] = {
    "Opt. SW": {},
    "4 Atoms": {"QuadSub": 1, "Pack": 1, "Transform": 1, "SATD": 1},
    "5 Atoms": {"QuadSub": 1, "Pack": 1, "Transform": 1, "SATD": 1, "Load": 1},
    "6 Atoms": {"QuadSub": 1, "Pack": 1, "Transform": 2, "SATD": 1, "Load": 1},
}


def available_atoms_for_config(library: SILibrary, config: str) -> Molecule:
    """Usable atoms under a named configuration: containers + static fabric."""
    if config not in REFERENCE_CONFIGS:
        raise ValueError(f"unknown configuration {config!r}")
    counts = dict(REFERENCE_CONFIGS[config])
    for kind in library.catalogue.static_kinds():
        counts[kind.name] = 16
    for name, baseline in library.catalogue.baseline_counts().items():
        counts[name] = counts.get(name, 0) + baseline
    return library.space.molecule(counts)


def si_cycles_for_config(library: SILibrary, si_name: str, config: str) -> int:
    """Latency of one SI execution under a named configuration (Fig. 11)."""
    available = available_atoms_for_config(library, config)
    return library.get(si_name).cycles_with(available)
