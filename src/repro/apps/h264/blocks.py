"""Block utilities: macroblock slicing and pixel handling."""

from __future__ import annotations

import numpy as np

MACROBLOCK_SIZE = 16
SUBBLOCK_SIZE = 4
CHROMA_SIZE = 8


def as_pixels(block) -> np.ndarray:
    """Validate a pixel block: integer values in [0, 255]."""
    arr = np.asarray(block, dtype=np.int64)
    if ((arr < 0) | (arr > 255)).any():
        raise ValueError("pixel values must be within [0, 255]")
    return arr


def split_into_4x4(block) -> list[list[np.ndarray]]:
    """Split an NxN block (N multiple of 4) into a grid of 4x4 sub-blocks."""
    arr = np.asarray(block, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError("expected a square block")
    n = arr.shape[0]
    if n % SUBBLOCK_SIZE:
        raise ValueError("block size must be a multiple of 4")
    grid = n // SUBBLOCK_SIZE
    return [
        [
            arr[
                i * SUBBLOCK_SIZE : (i + 1) * SUBBLOCK_SIZE,
                j * SUBBLOCK_SIZE : (j + 1) * SUBBLOCK_SIZE,
            ]
            for j in range(grid)
        ]
        for i in range(grid)
    ]


def assemble_from_4x4(grid: list[list[np.ndarray]]) -> np.ndarray:
    """Inverse of :func:`split_into_4x4`."""
    rows = [np.hstack(row) for row in grid]
    return np.vstack(rows)


def extract_block(frame: np.ndarray, top: int, left: int, size: int) -> np.ndarray:
    """Cut a ``size`` x ``size`` window out of a frame; bounds-checked."""
    h, w = frame.shape
    if not (0 <= top and top + size <= h and 0 <= left and left + size <= w):
        raise ValueError(
            f"block ({top},{left},{size}) out of frame bounds {frame.shape}"
        )
    return np.asarray(frame[top : top + size, left : left + size], dtype=np.int64)


def macroblock_positions(height: int, width: int) -> list[tuple[int, int]]:
    """Top-left corners of all full macroblocks in a frame."""
    if height < MACROBLOCK_SIZE or width < MACROBLOCK_SIZE:
        raise ValueError("frame smaller than one macroblock")
    return [
        (top, left)
        for top in range(0, height - MACROBLOCK_SIZE + 1, MACROBLOCK_SIZE)
        for left in range(0, width - MACROBLOCK_SIZE + 1, MACROBLOCK_SIZE)
    ]
