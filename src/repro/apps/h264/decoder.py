"""Intra-frame bitstream serialisation and the matching decoder.

Closes the codec loop: :func:`serialize_intra_frame` writes a complete
intra frame (header + per-block intra mode + run-level coefficients) as
a bitstream, and :func:`decode_intra_frame_bitstream` reconstructs the
frame from nothing but those bits — using the same causal prediction and
TQ chain as the encoder, so decoder output is **bit-exact** with the
encoder's reconstruction (the property that makes closed-loop prediction
drift-free).

Bitstream layout::

    ue(height/4) ue(width/4) ue(qp)
    per 4x4 block in raster order:
        ue(mode index into MODES)  run-level coded levels
"""

from __future__ import annotations

import numpy as np

from .entropy import BitReader, BitWriter, decode_block, encode_block, read_ue, write_ue
from .intra import MODES, IntraFrameResult, encode_intra_frame, intra_predict_4x4
from .quant import dequantize_4x4, inverse_dct_4x4


def serialize_intra_frame(
    result: IntraFrameResult, qp: int
) -> BitWriter:
    """Serialise an encoded intra frame (modes + quantized levels)."""
    height, width = result.reconstructed.shape
    writer = BitWriter()
    write_ue(writer, height // 4)
    write_ue(writer, width // 4)
    write_ue(writer, qp)
    for block_row in range(height // 4):
        for block_col in range(width // 4):
            key = (block_row, block_col)
            write_ue(writer, MODES.index(result.modes[key]))
            encode_block(result.levels[key], writer)
    return writer


def decode_intra_frame_bitstream(bits: list[int]) -> tuple[np.ndarray, int]:
    """Decode a frame from its serialized bits; returns (frame, qp).

    Reconstruction is causal and uses only decoded data — exactly what a
    receiver can do — and therefore matches the encoder's reference frame
    bit for bit.
    """
    reader = BitReader(bits)
    block_rows = read_ue(reader)
    block_cols = read_ue(reader)
    qp = read_ue(reader)
    if block_rows == 0 or block_cols == 0:
        raise ValueError("empty frame")
    if qp > 51:
        raise ValueError("invalid QP in bitstream")
    height, width = 4 * block_rows, 4 * block_cols
    recon = np.zeros((height, width), dtype=np.int64)
    for block_row in range(block_rows):
        for block_col in range(block_cols):
            mode_index = read_ue(reader)
            if mode_index >= len(MODES):
                raise ValueError("invalid intra mode in bitstream")
            mode = MODES[mode_index]
            levels = decode_block(reader)
            top_px, left_px = 4 * block_row, 4 * block_col
            top = recon[top_px - 1, left_px : left_px + 4] if top_px else None
            left = recon[top_px : top_px + 4, left_px - 1] if left_px else None
            prediction = intra_predict_4x4(mode, top, left)
            residual = inverse_dct_4x4(dequantize_4x4(levels, qp))
            recon[top_px : top_px + 4, left_px : left_px + 4] = np.clip(
                prediction + residual, 0, 255
            )
    return recon, qp


def roundtrip_intra_frame(frame, qp: int) -> tuple[np.ndarray, int]:
    """Encode, serialise, decode; returns (decoded frame, bitstream bits)."""
    encoded = encode_intra_frame(frame, qp)
    bitstream = serialize_intra_frame(encoded, qp)
    decoded, decoded_qp = decode_intra_frame_bitstream(bitstream.bits)
    if decoded_qp != qp:
        raise AssertionError("QP corrupted in the bitstream")
    if not (decoded == encoded.reconstructed).all():
        raise AssertionError(
            "decoder drifted from the encoder's reconstruction"
        )
    return decoded, len(bitstream)


# ---------------------------------------------------------------------------
# Whole-sequence codec: intra frame 0 + motion-compensated inter frames
# ---------------------------------------------------------------------------
#
# Sequence bitstream layout::
#
#     ue(height/4) ue(width/4) ue(qp) ue(n_frames)
#     frame 0: per 4x4 block raster: ue(mode) levels        (intra)
#     frames 1..: per macroblock position, per 4x4 sub-block:
#         ue(candidate index)  levels                        (inter)
#
# The decoder recomputes the candidate windows from the reference frame
# exactly like the encoder's motion search enumerated them, so candidate
# *indices* are a complete motion representation.

from .encoder import EncoderPipeline  # noqa: E402  (keeps module header tidy)
from .sequence import _encodable_positions  # noqa: E402
from .workload import build_macroblock, candidate_offsets  # noqa: E402


def _candidate_window(
    reference: np.ndarray, base_top: int, base_left: int, index: int
) -> np.ndarray:
    """The decoder's view of one motion candidate (clamped like the encoder)."""
    h, w = reference.shape
    dy, dx = candidate_offsets()[index]
    top = min(max(base_top + dy, 0), h - 4)
    left = min(max(base_left + dx, 0), w - 4)
    return reference[top : top + 4, left : left + 4]


def serialize_sequence(frames: list, qp: int) -> tuple[BitWriter, list[np.ndarray]]:
    """Encode a whole sequence to bits; returns (bitstream, reconstructions).

    Frame 0 is intra-coded; later frames are motion-compensated against
    the reconstructed predecessor.  The returned reconstructions are what
    any decoder of these bits must reproduce bit-exactly.
    """
    if not frames:
        raise ValueError("need at least one frame")
    frames = [np.asarray(f, dtype=np.int64) for f in frames]
    height, width = frames[0].shape
    if any(f.shape != (height, width) for f in frames):
        raise ValueError("all frames must share one shape")
    positions = _encodable_positions(height, width)
    if not positions:
        raise ValueError("frames too small to encode any macroblock")

    writer = BitWriter()
    write_ue(writer, height // 4)
    write_ue(writer, width // 4)
    write_ue(writer, qp)
    write_ue(writer, len(frames))

    recons: list[np.ndarray] = []
    intra = encode_intra_frame(frames[0], qp)
    for block_row in range(height // 4):
        for block_col in range(width // 4):
            key = (block_row, block_col)
            write_ue(writer, MODES.index(intra.modes[key]))
            encode_block(intra.levels[key], writer)
    recons.append(intra.reconstructed)

    pipeline = EncoderPipeline(qp=qp)
    reference = intra.reconstructed
    for frame in frames[1:]:
        recon = reference.copy()  # un-coded margins repeat the reference
        for top, left in positions:
            mb = build_macroblock(frame, reference, top, left)
            out = pipeline.encode_macroblock(mb)
            for sub in range(16):
                sy, sx = divmod(sub, 4)
                write_ue(writer, out.best_candidate_index[sub])
                encode_block(out.luma_levels[sy][sx], writer)
            recon[top : top + 16, left : left + 16] = out.reconstructed_luma
        recons.append(recon)
        reference = recon
    return writer, recons


def decode_sequence(bits: list[int]) -> tuple[list[np.ndarray], int]:
    """Decode a full sequence from its bits alone; returns (frames, qp)."""
    reader = BitReader(bits)
    block_rows = read_ue(reader)
    block_cols = read_ue(reader)
    qp = read_ue(reader)
    n_frames = read_ue(reader)
    if block_rows == 0 or block_cols == 0 or n_frames == 0:
        raise ValueError("empty sequence")
    if qp > 51:
        raise ValueError("invalid QP in bitstream")
    height, width = 4 * block_rows, 4 * block_cols
    positions = _encodable_positions(height, width)

    # Frame 0: intra.
    recon = np.zeros((height, width), dtype=np.int64)
    for block_row in range(block_rows):
        for block_col in range(block_cols):
            mode_index = read_ue(reader)
            if mode_index >= len(MODES):
                raise ValueError("invalid intra mode in bitstream")
            levels = decode_block(reader)
            top_px, left_px = 4 * block_row, 4 * block_col
            top = recon[top_px - 1, left_px : left_px + 4] if top_px else None
            left = recon[top_px : top_px + 4, left_px - 1] if left_px else None
            prediction = intra_predict_4x4(MODES[mode_index], top, left)
            residual = inverse_dct_4x4(dequantize_4x4(levels, qp))
            recon[top_px : top_px + 4, left_px : left_px + 4] = np.clip(
                prediction + residual, 0, 255
            )
    frames = [recon]

    # Later frames: motion compensation + residual.
    n_candidates = len(candidate_offsets())
    reference = recon
    for _frame in range(1, n_frames):
        out = reference.copy()
        for top, left in positions:
            for sub in range(16):
                sy, sx = divmod(sub, 4)
                index = read_ue(reader)
                if index >= n_candidates:
                    raise ValueError("invalid motion candidate in bitstream")
                levels = decode_block(reader)
                prediction = _candidate_window(
                    reference, top + 4 * sy, left + 4 * sx, index
                )
                residual = inverse_dct_4x4(dequantize_4x4(levels, qp))
                out[
                    top + 4 * sy : top + 4 * sy + 4,
                    left + 4 * sx : left + 4 * sx + 4,
                ] = np.clip(prediction + residual, 0, 255)
        frames.append(out)
        reference = out
    return frames, qp
