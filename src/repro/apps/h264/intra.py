"""H.264 4x4 intra prediction (DC / Vertical / Horizontal modes).

The Fig. 7 pipeline's "Intra MB injection" path: when inter prediction is
poor, blocks are predicted from their already-reconstructed neighbours
inside the same frame.  Implemented causally — each 4x4 block predicts
from the *reconstructed* pixels above and to the left, exactly like a
real decoder will — with the three classic modes and SAD-based mode
decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .quant import quantize_4x4, reconstruct_4x4
from .transforms import dct_4x4

MODES = ("DC", "V", "H")


def intra_predict_4x4(
    mode: str,
    top: np.ndarray | None,
    left: np.ndarray | None,
) -> np.ndarray:
    """One 4x4 intra prediction from the neighbouring pixel rows.

    ``top`` is the 4-pixel row above the block, ``left`` the 4-pixel
    column to its left (``None`` when outside the frame).  ``V`` needs
    ``top``, ``H`` needs ``left``; ``DC`` averages whatever is available
    and falls back to mid-grey.
    """
    if top is not None:
        top = np.asarray(top, dtype=np.int64)
        if top.shape != (4,):
            raise ValueError("top neighbours must be 4 pixels")
    if left is not None:
        left = np.asarray(left, dtype=np.int64)
        if left.shape != (4,):
            raise ValueError("left neighbours must be 4 pixels")
    if mode == "V":
        if top is None:
            raise ValueError("vertical prediction needs top neighbours")
        return np.tile(top, (4, 1))
    if mode == "H":
        if left is None:
            raise ValueError("horizontal prediction needs left neighbours")
        return np.tile(left.reshape(4, 1), (1, 4))
    if mode == "DC":
        values = []
        if top is not None:
            values.extend(int(v) for v in top)
        if left is not None:
            values.extend(int(v) for v in left)
        dc = (sum(values) + len(values) // 2) // len(values) if values else 128
        return np.full((4, 4), dc, dtype=np.int64)
    raise ValueError(f"unknown intra mode {mode!r}")


def available_modes(top, left) -> list[str]:
    """Modes usable given the available neighbours (DC always works)."""
    modes = ["DC"]
    if top is not None:
        modes.append("V")
    if left is not None:
        modes.append("H")
    return modes


def best_intra_mode(
    block, top, left
) -> tuple[str, np.ndarray, int]:
    """SAD-based mode decision; returns (mode, prediction, sad)."""
    arr = np.asarray(block, dtype=np.int64)
    if arr.shape != (4, 4):
        raise ValueError("intra prediction operates on 4x4 blocks")
    best: tuple[str, np.ndarray, int] | None = None
    for mode in available_modes(top, left):
        prediction = intra_predict_4x4(mode, top, left)
        sad = int(np.abs(arr - prediction).sum())
        if best is None or sad < best[2]:
            best = (mode, prediction, sad)
    assert best is not None
    return best


@dataclass
class IntraFrameResult:
    """One intra-coded frame."""

    reconstructed: np.ndarray
    modes: dict[tuple[int, int], str] = field(default_factory=dict)
    levels: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    def psnr(self, original) -> float:
        diff = np.asarray(original, dtype=np.float64) - self.reconstructed
        mse = float(np.mean(diff * diff))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(255.0**2 / mse)


def encode_intra_frame(frame, qp: int) -> IntraFrameResult:
    """Intra-code a whole luma frame, 4x4 block by 4x4 block, causally.

    Each block is predicted from the reconstructed pixels above/left
    (never from original pixels — the decoder won't have them), its
    residual goes through the TQ chain, and the reconstruction feeds the
    next blocks' predictions.
    """
    arr = np.asarray(frame, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[0] % 4 or arr.shape[1] % 4:
        raise ValueError("frame dimensions must be multiples of 4")
    height, width = arr.shape
    recon = np.zeros_like(arr)
    result = IntraFrameResult(reconstructed=recon)
    for top_px in range(0, height, 4):
        for left_px in range(0, width, 4):
            block = arr[top_px : top_px + 4, left_px : left_px + 4]
            top = (
                recon[top_px - 1, left_px : left_px + 4]
                if top_px > 0
                else None
            )
            left = (
                recon[top_px : top_px + 4, left_px - 1]
                if left_px > 0
                else None
            )
            mode, prediction, _sad = best_intra_mode(block, top, left)
            coefficients = dct_4x4(block - prediction)
            levels = quantize_4x4(coefficients, qp, intra=True)
            residual = reconstruct_4x4(coefficients, qp, intra=True)
            recon[top_px : top_px + 4, left_px : left_px + 4] = np.clip(
                prediction + residual, 0, 255
            )
            key = (top_px // 4, left_px // 4)
            result.modes[key] = mode
            result.levels[key] = levels
    return result
