"""Future-work SIs: Motion Compensation and Loop Filter hot spots.

The paper closes its results with: "Amdahl's law prevents significant
further speed-up when offering more Atoms.  To overcome this we will
consider additional SIs focusing on different hot spots in future work."
This module implements that future work behaviourally: the two remaining
H.264 hot-spot groups from Fig. 1 — Motion Compensation (half-pel
interpolation, the standard's 6-tap filter) and the deblocking Loop
Filter — as functional kernels, new Atoms, and SIs with molecule
catalogues generated automatically by :mod:`repro.core.molgen`.

The extended cycle model carves the MC/LF work out of Fig. 12's non-SI
core overhead (keeping the published totals intact when the new SIs run
in software) so the bench can show the Amdahl ceiling lifting.
"""

from __future__ import annotations

import numpy as np

from ...core.atom import AtomCatalogue, AtomKind
from ...core.library import SILibrary

from ...core.molgen import generate_si
from ...core.schedule import layered_dataflow
from ...core.si import SpecialInstruction
from .encoder import CORE_OVERHEAD_CYCLES
from .sis import SOFTWARE_CYCLES, TABLE2, _impls, build_h264_catalogue

# ---------------------------------------------------------------------------
# Functional kernels
# ---------------------------------------------------------------------------

#: The H.264 half-pel 6-tap filter taps (applied then >> 5 with rounding).
SIXTAP = (1, -5, 20, 20, -5, 1)


def clip_pixel(value: int) -> int:
    """Saturate to the 8-bit pixel range (the Clip atom's function)."""
    return max(0, min(255, int(value)))


def sixtap_half_pel(samples) -> int:
    """One half-pel sample from six integer-pel neighbours (H.264 §8.4.2.2).

    ``b = (E - 5F + 20G + 20H - 5I + J + 16) >> 5``, clipped to 0..255.
    """
    arr = np.asarray(samples, dtype=np.int64)
    if arr.shape != (6,):
        raise ValueError("the 6-tap filter needs exactly six samples")
    acc = int(np.dot(arr, SIXTAP))
    return clip_pixel((acc + 16) >> 5)


def interpolate_half_pel_row(row) -> np.ndarray:
    """Half-pel samples between the integer pixels of one padded row.

    ``row`` has ``n + 5`` integer pixels; the result has ``n`` half-pel
    samples, one between each central pixel pair.
    """
    arr = np.asarray(row, dtype=np.int64)
    if arr.size < 6:
        raise ValueError("need at least six samples for one half-pel value")
    return np.array(
        [sixtap_half_pel(arr[i : i + 6]) for i in range(arr.size - 5)],
        dtype=np.int64,
    )


def mc_half_pel_block(padded_block) -> np.ndarray:
    """Half-pel horizontal interpolation of a 4-row block.

    ``padded_block`` is 4 x (w + 5) integer pixels; returns 4 x w half-pel
    samples — one MC_HPEL SI call covers one such block (Fig. 1's MC hot
    spot operates per prediction block).
    """
    arr = np.asarray(padded_block, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[0] != 4 or arr.shape[1] < 6:
        raise ValueError("expected a 4 x (w+5) padded block")
    return np.vstack([interpolate_half_pel_row(r) for r in arr])


def deblock_edge(p, q, *, alpha: int = 40, beta: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Filter one 4+4-pixel edge (simplified H.264 in-loop deblocking).

    ``p = (p3, p2, p1, p0)`` and ``q = (q0, q1, q2, q3)`` straddle the
    block edge.  When the gradients are below the (alpha, beta)
    thresholds the boundary samples are smoothed with the standard's
    bs<4 filter shape; otherwise the edge is a real feature and is left
    untouched.
    """
    p = np.asarray(p, dtype=np.int64).copy()
    q = np.asarray(q, dtype=np.int64).copy()
    if p.shape != (4,) or q.shape != (4,):
        raise ValueError("an edge is four pixels on each side")
    if alpha < 1 or beta < 1:
        raise ValueError("thresholds must be positive")
    p3, p2, p1, p0 = p
    q0, q1, q2, q3 = q
    if abs(p0 - q0) >= alpha or abs(p1 - p0) >= beta or abs(q1 - q0) >= beta:
        return p, q
    delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3
    delta = max(-6, min(6, delta))
    p[3] = clip_pixel(p0 + delta)
    q[0] = clip_pixel(q0 - delta)
    p[2] = clip_pixel(p1 + ((p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1))
    q[1] = clip_pixel(q1 + ((q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1))
    return p, q


def deblock_block_edge(p_cols, q_cols, **thresholds):
    """Deblock the four pixel rows crossing one 4x4-block edge."""
    p_cols = np.asarray(p_cols, dtype=np.int64)
    q_cols = np.asarray(q_cols, dtype=np.int64)
    if p_cols.shape != (4, 4) or q_cols.shape != (4, 4):
        raise ValueError("expected 4x4 pixel arrays on both edge sides")
    outs = [deblock_edge(p_cols[i], q_cols[i], **thresholds) for i in range(4)]
    return np.vstack([o[0] for o in outs]), np.vstack([o[1] for o in outs])


# ---------------------------------------------------------------------------
# Extended atom catalogue and SI library
# ---------------------------------------------------------------------------

#: Software latencies of the extension SIs (cycles on the scalar core).
EXTENSION_SOFTWARE_CYCLES = {"MC_HPEL": 900, "LF_EDGE": 400}

#: Per-macroblock invocation counts of the extension SIs: 16 half-pel
#: prediction blocks and 32 deblocking edges (8 vertical + 8 horizontal
#: per 16x16 luma, x2 for the internal 4x4 grid, simplified).
EXTENSION_SI_COUNTS = {"MC_HPEL": 16, "LF_EDGE": 32}

#: The MC/LF work previously buried in Fig. 12's non-SI core overhead:
#: 16 x 900 + 32 x 400 = 27_200 cycles of the 53_695 total.
EXTENSION_SW_CYCLES_PER_MB = sum(
    EXTENSION_SI_COUNTS[n] * EXTENSION_SOFTWARE_CYCLES[n]
    for n in EXTENSION_SI_COUNTS
)
#: Core overhead that remains non-SI after carving the hot spots out.
RESIDUAL_CORE_OVERHEAD = CORE_OVERHEAD_CYCLES - EXTENSION_SW_CYCLES_PER_MB


def build_extended_catalogue() -> AtomCatalogue:
    """The §6 catalogue plus the MC/LF atoms (SixTap, Clip)."""
    base = build_h264_catalogue()
    return AtomCatalogue.of(
        list(base.kinds)
        + [
            AtomKind(
                "SixTap",
                bitstream_bytes=62_000,
                slices=480,
                luts=960,
                description="half-pel 6-tap interpolation filter",
            ),
            AtomKind(
                "Clip",
                bitstream_bytes=54_000,
                slices=300,
                luts=600,
                description="saturation + threshold comparators (deblocking)",
            ),
        ]
    )


def _mc_dataflow():
    # 4 rows x 4 half-pel outputs: 16 SixTap executions feeding 16 clips,
    # packed 4-wide like the other atoms -> 4+4 packed executions.
    return layered_dataflow([("SixTap", 4, 2), ("Clip", 4, 1)])


def _lf_dataflow():
    # 4 edge rows: gradient tests + smoothing = 4 Clip-heavy stages with
    # a SixTap-adder pass for the averaging terms.
    return layered_dataflow([("Clip", 4, 1), ("SixTap", 2, 2), ("Clip", 4, 1)])


def build_extended_library() -> SILibrary:
    """The full library: Table 2 SIs + auto-generated MC_HPEL and LF_EDGE.

    The new SIs' molecule catalogues come from
    :func:`repro.core.molgen.generate_si` — the automated flow the paper
    names as future work — restricted to the {1, 2, 4} replication counts
    the hand-made catalogue uses, with an issue overhead calibrated so
    the minimal molecules land in the same latency class as Table 2's.
    """
    catalogue = build_extended_catalogue()
    space = catalogue.space

    sis: list[SpecialInstruction] = [
        SpecialInstruction(name, space, SOFTWARE_CYCLES[name], _impls(space, rows))
        for name, rows in TABLE2.items()
    ]
    mc, _ = generate_si(
        "MC_HPEL",
        _mc_dataflow(),
        space,
        EXTENSION_SOFTWARE_CYCLES["MC_HPEL"],
        counts_allowed=(1, 2, 4),
        issue_overhead=4,
        description="half-pel motion-compensation interpolation",
    )
    lf, _ = generate_si(
        "LF_EDGE",
        _lf_dataflow(),
        space,
        EXTENSION_SOFTWARE_CYCLES["LF_EDGE"],
        counts_allowed=(1, 2, 4),
        issue_overhead=3,
        description="one deblocking edge of the in-loop filter",
    )
    sis.extend([mc, lf])
    return SILibrary(catalogue, sis)


def extended_macroblock_cycles(si_cycles: dict[str, int]) -> int:
    """Per-MB cycles with the MC/LF hot spots modelled as SIs.

    With every extension SI at its software latency this reproduces the
    original Fig. 12 numbers exactly (the carve-out is latency-neutral).
    """
    from .encoder import LUMA_SI_COUNTS

    total = RESIDUAL_CORE_OVERHEAD
    for name, count in LUMA_SI_COUNTS.items():
        total += count * si_cycles[name]
    for name, count in EXTENSION_SI_COUNTS.items():
        total += count * si_cycles[name]
    return total
