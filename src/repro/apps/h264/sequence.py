"""Multi-frame closed-loop encoding: the full encoder above the SIs.

Chains the Fig. 7 macroblock pipeline into a real encoding loop: each
frame is predicted from the *reconstructed* previous frame (the decoder-
in-the-encoder of :mod:`repro.apps.h264.quant` — exactly why encoders run
their own inverse TQ), the quantized levels are entropy-coded to actual
bits, and per-frame PSNR/rate statistics come out.  The first frame is
coded intra-style against a flat mid-grey predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import MACROBLOCK_SIZE
from .encoder import EncoderPipeline
from .entropy import macroblock_bits
from .workload import build_macroblock


@dataclass
class FrameStats:
    """Quality/rate outcome of one encoded frame."""

    index: int
    psnr_db: float
    bits: int
    macroblocks: int
    intra_macroblocks: int
    si_counts: dict[str, int] = field(default_factory=dict)


@dataclass
class SequenceReport:
    """The encoded sequence."""

    qp: int
    frames: list[FrameStats] = field(default_factory=list)
    reconstructed: list[np.ndarray] = field(default_factory=list)

    def total_bits(self) -> int:
        return sum(f.bits for f in self.frames)

    def mean_psnr(self) -> float:
        return float(np.mean([f.psnr_db for f in self.frames]))


def _encodable_positions(height: int, width: int) -> list[tuple[int, int]]:
    """MB positions leaving a margin so motion candidates stay in-frame."""
    return [
        (top, left)
        for top in range(16, height - 2 * MACROBLOCK_SIZE + 1, MACROBLOCK_SIZE)
        for left in range(16, width - 2 * MACROBLOCK_SIZE + 1, MACROBLOCK_SIZE)
    ]


def _psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def encode_sequence(
    frames: list[np.ndarray],
    qp: int,
    *,
    intra_threshold: int = 2000,
    intra_first_frame: bool = False,
) -> SequenceReport:
    """Encode a sequence of luma frames at quantization parameter ``qp``.

    Frame 0 is predicted from flat mid-grey by default, or coded with the
    causal 4x4 intra predictor when ``intra_first_frame`` is set; each
    later frame predicts from the reconstructed previous frame (closed
    loop).  PSNR and bits are measured over the encoded macroblock region
    (whole frame for the intra frame).
    """
    if not frames:
        raise ValueError("need at least one frame")
    shapes = {f.shape for f in map(np.asarray, frames)}
    if len(shapes) != 1:
        raise ValueError("all frames must share one shape")
    height, width = shapes.pop()
    positions = _encodable_positions(height, width)
    if not positions:
        raise ValueError("frames too small to encode any macroblock")

    pipeline = EncoderPipeline(qp=qp, intra_threshold=intra_threshold)
    report = SequenceReport(qp=qp)
    reference = np.full((height, width), 128, dtype=np.int64)
    start_index = 0
    if intra_first_frame:
        from .entropy import block_bits
        from .intra import encode_intra_frame

        first = np.asarray(frames[0], dtype=np.int64)
        intra = encode_intra_frame(first, qp)
        report.frames.append(
            FrameStats(
                index=0,
                psnr_db=intra.psnr(first),
                bits=sum(block_bits(lv) for lv in intra.levels.values()),
                macroblocks=(height // 16) * (width // 16),
                intra_macroblocks=(height // 16) * (width // 16),
            )
        )
        report.reconstructed.append(intra.reconstructed)
        reference = intra.reconstructed
        start_index = 1
    for index, frame in enumerate(frames[start_index:], start=start_index):
        frame = np.asarray(frame, dtype=np.int64)
        recon = frame.copy()  # un-encoded margins pass through
        bits = 0
        intra_count = 0
        si_counts: dict[str, int] = {}
        originals = []
        recon_blocks = []
        for top, left in positions:
            mb = build_macroblock(frame, reference, top, left)
            out = pipeline.encode_macroblock(mb)
            bits += macroblock_bits(out.luma_levels)
            if out.intra_injected:
                intra_count += 1
            for name, count in out.si_counts.items():
                si_counts[name] = si_counts.get(name, 0) + count
            recon[top : top + 16, left : left + 16] = out.reconstructed_luma
            originals.append(mb.luma)
            recon_blocks.append(out.reconstructed_luma)
        psnr = _psnr(np.vstack(originals), np.vstack(recon_blocks))
        report.frames.append(
            FrameStats(
                index=index,
                psnr_db=psnr,
                bits=bits,
                macroblocks=len(positions),
                intra_macroblocks=intra_count,
                si_counts=si_counts,
            )
        )
        report.reconstructed.append(recon)
        reference = recon
    return report
