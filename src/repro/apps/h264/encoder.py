"""The Fig. 7 test-application flow: the H.264 transform/ME pipeline.

Per macroblock (16x16 pixels, the encoder's basic processing unit):

1. For each of the 16 luma 4x4 sub-blocks, SATD_4x4 is computed for 16
   candidate predictions; the minimum-SATD candidate wins.
2. The winner's residual is forwarded to DCT_4x4 (16 calls per MB).
3. The Quality Manager may decide to switch to Intra-MB injection when
   even the best candidate is poor (worst-case SATD threshold).
4. After the 16 DCTs, one HT_4x4 transforms the 16 luma DC coefficients.
5. Chroma (inter and intra alike): no SATD (ME runs on luma only); each
   8x8 Cb/Cr component takes 4 DCT_4x4 calls (8 total) plus one HT_2x2 on
   its 2x2 DC coefficients.

The pipeline is *functional* — it produces real coefficients — while also
reporting SI invocation counts, which the cycle model combines with the
per-SI latencies of the current RISPP state to yield whole-application
cycle counts (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .atoms import AtomExecutionCounter
from .blocks import split_into_4x4
from .transforms import dc_coefficients, residual
from .workload import MacroblockData
from .sis import si_dct_4x4, si_ht_2x2, si_ht_4x4, si_satd_4x4

#: SI invocations of one macroblock, luma only (the Fig. 12 accounting):
#: 16 sub-blocks x 16 candidates SATD, 16 DCT, 1 HT_4x4.
LUMA_SI_COUNTS: dict[str, int] = {"SATD_4x4": 256, "DCT_4x4": 16, "HT_4x4": 1}
#: Additional chroma invocations: 2 components x 4 DCT + 2 x HT_2x2.
CHROMA_SI_COUNTS: dict[str, int] = {"DCT_4x4": 8, "HT_2x2": 2}

#: Non-SI core cycles per macroblock (loop control, candidate compare,
#: quality manager, addressing).  Calibrated once so that the pure-software
#: luma pipeline totals the paper's 201,065 cycles/MB:
#: 201_065 - (256*544 + 16*488 + 298) = 53_695.
CORE_OVERHEAD_CYCLES = 53_695


@dataclass
class EncodedMacroblock:
    """Everything Fig. 7 produces for one macroblock."""

    luma_coefficients: list[list[np.ndarray]]
    dc_block: np.ndarray
    chroma_coefficients: dict[str, list[list[np.ndarray]]]
    chroma_dc: dict[str, np.ndarray]
    best_candidate_index: list[int]
    best_satd: list[int]
    intra_injected: bool
    si_counts: dict[str, int] = field(default_factory=dict)
    #: Decoded luma (prediction + reconstructed residual); present when
    #: the pipeline quantizes (``qp`` given).
    reconstructed_luma: np.ndarray | None = None
    #: Quantized transform levels per luma sub-block (``qp`` given).
    luma_levels: list[list[np.ndarray]] | None = None

    def luma_psnr(self, original: np.ndarray) -> float:
        """Peak signal-to-noise ratio of the reconstructed luma, dB."""
        if self.reconstructed_luma is None:
            raise ValueError("pipeline ran without quantization (no qp)")
        diff = np.asarray(original, dtype=np.float64) - self.reconstructed_luma
        mse = float(np.mean(diff * diff))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(255.0**2 / mse)


class EncoderPipeline:
    """Functional Fig. 7 pipeline with SI accounting.

    Parameters
    ----------
    include_chroma:
        Process the Cb/Cr components (steps 5).  The Fig. 12 calibration
        covers the luma pipeline; chroma adds the HT_2x2/extra-DCT load.
    intra_threshold:
        Quality-manager bound: if a sub-block's best SATD exceeds it, the
        macroblock is flagged for Intra-MB injection.
    count_atoms:
        Also count individual Atom executions (slower; for analysis).
    """

    def __init__(
        self,
        *,
        include_chroma: bool = True,
        intra_threshold: int = 2000,
        count_atoms: bool = False,
        qp: int | None = None,
    ):
        if intra_threshold < 0:
            raise ValueError("intra threshold cannot be negative")
        if qp is not None and not 0 <= qp <= 51:
            raise ValueError("QP must be within [0, 51]")
        self.include_chroma = include_chroma
        self.intra_threshold = intra_threshold
        self.atom_counter = AtomExecutionCounter() if count_atoms else None
        self.qp = qp

    # -- functional path -----------------------------------------------------

    def encode_macroblock(self, mb: MacroblockData) -> EncodedMacroblock:
        """Run the full Fig. 7 flow on one macroblock."""
        si_counts: dict[str, int] = {}

        def bump(name: str, by: int = 1) -> None:
            si_counts[name] = si_counts.get(name, 0) + by

        luma_grid = split_into_4x4(mb.luma)
        coeff_grid: list[list[np.ndarray]] = [[None] * 4 for _ in range(4)]
        level_grid: list[list[np.ndarray]] | None = (
            [[None] * 4 for _ in range(4)] if self.qp is not None else None
        )
        recon: np.ndarray | None = (
            np.zeros((16, 16), dtype=np.int64) if self.qp is not None else None
        )
        best_index: list[int] = []
        best_satd: list[int] = []
        intra = False
        for sub in range(16):
            sy, sx = divmod(sub, 4)
            original = luma_grid[sy][sx]
            satds = []
            for candidate in mb.candidates[sub]:
                satds.append(si_satd_4x4(original, candidate, self.atom_counter))
                bump("SATD_4x4")
            winner = int(np.argmin(satds))
            best_index.append(winner)
            best_satd.append(satds[winner])
            if satds[winner] > self.intra_threshold:
                intra = True
            chosen = mb.candidates[sub][winner]
            res = residual(original, chosen)
            coeff_grid[sy][sx] = si_dct_4x4(res, self.atom_counter)
            bump("DCT_4x4")
            if self.qp is not None:
                # The decoder-in-the-encoder: quantize, rescale, inverse-
                # transform, add the prediction back (reference frames).
                from .quant import quantize_4x4, reconstruct_4x4

                level_grid[sy][sx] = quantize_4x4(
                    coeff_grid[sy][sx], self.qp, intra=True
                )
                rec_res = reconstruct_4x4(coeff_grid[sy][sx], self.qp, intra=True)
                block = np.clip(chosen + rec_res, 0, 255)
                recon[4 * sy : 4 * sy + 4, 4 * sx : 4 * sx + 4] = block
        dc = dc_coefficients(coeff_grid)
        dc_block = si_ht_4x4(dc, self.atom_counter)
        bump("HT_4x4")

        chroma_coeffs: dict[str, list[list[np.ndarray]]] = {}
        chroma_dc: dict[str, np.ndarray] = {}
        if self.include_chroma:
            for name, plane in (("cb", mb.cb), ("cr", mb.cr)):
                grid = split_into_4x4(plane)
                out: list[list[np.ndarray]] = [[None] * 2 for _ in range(2)]
                for i in range(2):
                    for j in range(2):
                        # Chroma blocks are intra-coded here (no ME on
                        # chroma); transform the level-shifted pixels.
                        out[i][j] = si_dct_4x4(grid[i][j] - 128, self.atom_counter)
                        bump("DCT_4x4")
                chroma_coeffs[name] = out
                chroma_dc[name] = si_ht_2x2(dc_coefficients(out), self.atom_counter)
                bump("HT_2x2")

        return EncodedMacroblock(
            luma_coefficients=coeff_grid,
            dc_block=dc_block,
            chroma_coefficients=chroma_coeffs,
            chroma_dc=chroma_dc,
            best_candidate_index=best_index,
            best_satd=best_satd,
            intra_injected=intra,
            si_counts=si_counts,
            reconstructed_luma=recon,
            luma_levels=level_grid,
        )

    # -- cycle accounting ------------------------------------------------------

    def si_invocations_per_macroblock(self) -> dict[str, int]:
        """Static SI call counts of one macroblock under this pipeline."""
        counts = dict(LUMA_SI_COUNTS)
        if self.include_chroma:
            for name, n in CHROMA_SI_COUNTS.items():
                counts[name] = counts.get(name, 0) + n
        return counts


def macroblock_cycles(
    si_cycles: dict[str, int],
    *,
    include_chroma: bool = False,
    core_overhead: int = CORE_OVERHEAD_CYCLES,
    macroblocks: int = 1,
) -> int:
    """Whole-pipeline cycles given per-SI latencies (the Fig. 12 model).

    ``si_cycles`` maps SI names to the latency of one execution under the
    current RISPP state (software, partial or full hardware).  The total
    is ``macroblocks * (sum over SIs of count * latency + core_overhead)``.
    """
    if macroblocks < 1:
        raise ValueError("need at least one macroblock")
    counts = dict(LUMA_SI_COUNTS)
    if include_chroma:
        for name, n in CHROMA_SI_COUNTS.items():
            counts[name] = counts.get(name, 0) + n
    per_mb = core_overhead
    for name, count in counts.items():
        if name not in si_cycles:
            raise ValueError(f"missing latency for SI {name!r}")
        per_mb += count * si_cycles[name]
    return macroblocks * per_mb
