"""The Fig. 6 run-time scenario: two tasks sharing six Atom Containers.

Task A is the H.264 video codec executing SATD_4x4; Task B is a second
task with two private SIs ("SI0 and SI1 for brevity").  The paper walks
through six points in time:

* **T0** — steady state: ACs 0..3 hold the smallest SATD_4x4 molecule
  (QuadSub/Pack/Transform/SATD), ACs 4..5 belong to B and implement SI0.
* **T1** — the more important SI1 is forecasted for B: one of A's
  containers is reallocated and rotated for SI1; A's SATD_4x4 falls back
  to software.
* **T2** — the forecast states SI1 is no longer needed (and SI0 seldom):
  B's containers are reallocated to Task A, which initiates rotations
  towards a hardware SATD_4x4 again.
* **T3** — B still executes SI0 *in hardware* on containers that now
  belong to A — they still contain SI0's Atoms until their rotation
  starts (the resource sharing the paper highlights).
* **T4** — the first rotation completes; SATD_4x4 immediately switches
  from SW to HW execution.
* **T5** — a further rotation completes; SATD_4x4 upgrades to an even
  faster molecule.

:func:`build_scenario_library` extends the H.264 catalogue with Task B's
atoms (named ``Clip``/``Filt``/``Interp`` here — the paper leaves them
abstract); :func:`run_fig6_scenario` executes the whole timeline and
returns the runtime (with its event trace) plus the simulator labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.atom import AtomCatalogue, AtomKind
from ...core.library import SILibrary
from ...core.si import MoleculeImpl, SpecialInstruction
from ...runtime.manager import RisppRuntime
from ...runtime.replacement import LRUPolicy
from ...sim.task import (
    Compute,
    ExecuteSI,
    Forecast,
    ForecastEnd,
    Label,
    MultiTaskSimulator,
    ScriptedTask,
)
from .sis import SOFTWARE_CYCLES, TABLE2, _impls, build_h264_catalogue


def build_scenario_library() -> SILibrary:
    """H.264 SIs + Task B's SI0/SI1 over an extended atom catalogue."""
    base = build_h264_catalogue()
    kinds = list(base.kinds) + [
        AtomKind("Clip", bitstream_bytes=58_000, description="task B atom"),
        AtomKind("Filt", bitstream_bytes=60_000, description="task B atom"),
        AtomKind("Interp", bitstream_bytes=59_000, description="task B atom"),
    ]
    catalogue = AtomCatalogue.of(kinds)
    space = catalogue.space
    sis = [
        SpecialInstruction(
            name, space, SOFTWARE_CYCLES[name], _impls(space, rows)
        )
        for name, rows in TABLE2.items()
    ]
    sis.append(
        SpecialInstruction(
            "SI0",
            space,
            150,
            [MoleculeImpl(space.molecule({"Clip": 1, "Filt": 1}), 15, label="C1 F1")],
            description="task B's less important SI",
        )
    )
    sis.append(
        SpecialInstruction(
            "SI1",
            space,
            300,
            [
                MoleculeImpl(
                    space.molecule({"Pack": 1, "Transform": 1, "Interp": 1}),
                    20,
                    label="P1 T1 I1",
                )
            ],
            description="task B's more important SI; reuses Pack/Transform",
        )
    )
    return SILibrary(catalogue, sis)


@dataclass
class Fig6Result:
    """The executed scenario: runtime (trace, fabric) + time labels."""

    runtime: RisppRuntime
    simulator: MultiTaskSimulator

    def label(self, task: str, name: str) -> int:
        return self.simulator.label_time(task, name)


def build_fig6_tasks() -> list[ScriptedTask]:
    """The two task scripts, timed so all six T-points are observable."""
    task_a = ScriptedTask(
        "A",
        [
            Forecast("SATD_4x4", expected=20.0, priority=1.0),
            Compute(750_000),  # rotations for both tasks complete in here
            Label("T0"),
            ExecuteSI("SATD_4x4", times=100),  # hardware, smallest molecule
            Compute(5_000),
            Label("T1_window"),
            ExecuteSI("SATD_4x4", times=100),  # software after reallocation
            Compute(40_000),
            # After B's T2, keep executing while rotations trickle in:
            ExecuteSI("SATD_4x4", times=200),
            Compute(30_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(30_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(60_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(60_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(60_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(60_000),
            ExecuteSI("SATD_4x4", times=200),
            Compute(60_000),
            ExecuteSI("SATD_4x4", times=200),
            Label("end"),
        ],
    )
    task_b = ScriptedTask(
        "B",
        [
            Forecast("SI0", expected=12.0, priority=10.0),
            Compute(750_000),
            Label("T0"),
            ExecuteSI("SI0", times=100),  # hardware on ACs 4/5
            Compute(3_000),
            Label("T1"),
            Forecast("SI1", expected=50.0, priority=20.0),
            ExecuteSI("SI1", times=20),  # software while Interp rotates
            Compute(80_000),
            ExecuteSI("SI1", times=50),  # hardware, deploying the new AC
            Compute(10_000),
            Label("T2"),
            ForecastEnd("SI1"),
            ForecastEnd("SI0"),
            Compute(5_000),
            Label("T3"),
            ExecuteSI("SI0", times=20),  # still HW on A's containers
            Label("end"),
        ],
    )
    return [task_a, task_b]


def run_fig6_scenario(*, num_containers: int = 6) -> Fig6Result:
    """Execute the Fig. 6 timeline and return the traced result."""
    library = build_scenario_library()
    runtime = RisppRuntime(
        library,
        num_containers,
        core_mhz=100.0,
        policy=LRUPolicy(),
    )
    simulator = MultiTaskSimulator(runtime, build_fig6_tasks())
    simulator.run()
    return Fig6Result(runtime=runtime, simulator=simulator)
