"""Behavioural Atom data paths of the H.264 case study (paper §6).

Each function models one execution of one Atom's data path on real data:

* :func:`transform_atom` — the Fig. 9 butterfly: the add/subtract flow
  shared by all three H.264 transforms, with the ``DCT`` shift elements
  (``<< 1``) and the ``HT`` shift elements (``>> 1``) multiplexed in by
  two control signals, making the single Atom reusable for SATD_4x4,
  DCT_4x4, HT_4x4 and HT_2x2.
* :func:`satd_atom` — absolute-value adder tree over four coefficients.
* :func:`quadsub_atom` — four parallel subtractions (residual pairs).
* :func:`pack_atom` — the Pack_LSB_MSB data reorganisation: two 16-bit
  values share one 32-bit register (the paper's storage pattern for
  coefficients), and packing LSB/MSB halves across registers realises
  the row/column transposition between transform passes.

A :class:`AtomExecutionCounter` wraps the functions to count executions
per kind, letting tests verify statements like "each HT_4x4 requires 4
Transform- and 4 Pack-executions" directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

INT16_MIN = -(1 << 15)
INT16_MAX = (1 << 15) - 1


def _vec4(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.shape != (4,):
        raise ValueError(f"atom data paths are 4 elements wide, got {arr.shape}")
    return arr


def transform_atom(values, *, mode: str, ht_shift: bool = False) -> np.ndarray:
    """One pass of the shared Transform butterfly (Fig. 9).

    Parameters
    ----------
    values:
        Four input coefficients ``(x0, x1, x2, x3)``.
    mode:
        ``"DCT"`` engages the ``<< 1`` shift elements (H.264 integer
        transform row), ``"HT"`` the plain Hadamard butterfly.
    ht_shift:
        In HT mode, additionally apply the ``>> 1`` output shifters
        (used on the second, column pass of HT_4x4 so the 2-D result is
        the standard's ``(H.X.H^T)/2``).

    Returns the four output coefficients ``(y0, y1, y2, y3)``.
    """
    x0, x1, x2, x3 = _vec4(values)
    e0 = x0 + x3
    e1 = x1 + x2
    e2 = x1 - x2
    e3 = x0 - x3
    if mode == "DCT":
        if ht_shift:
            raise ValueError("the >>1 shifters belong to HT mode")
        y = np.array([e0 + e1, (e3 << 1) + e2, e0 - e1, e3 - (e2 << 1)])
    elif mode == "HT":
        y = np.array([e0 + e1, e3 + e2, e0 - e1, e3 - e2])
        if ht_shift:
            y = y >> 1
    else:
        raise ValueError(f"unknown transform mode {mode!r}")
    return y.astype(np.int64)


def satd_atom(values) -> int:
    """Absolute-value adder tree: one partial SATD accumulation."""
    return int(np.abs(_vec4(values)).sum())


def quadsub_atom(originals, predictions) -> np.ndarray:
    """Four parallel 16-bit subtractions (one residual quadruple)."""
    a = _vec4(originals)
    b = _vec4(predictions)
    return a - b


def pack_words(lsb_values, msb_values) -> np.ndarray:
    """Pack pairs of 16-bit values into 32-bit words (LSB | MSB << 16).

    "As the coefficients are not exceeding the 16-bit range we have
    considered the 16-bit storage pattern ... Two 16-bit data values are
    packed into one 32-bit register" (§6).
    """
    lsb = _vec4(lsb_values)
    msb = _vec4(msb_values)
    for arr in (lsb, msb):
        if ((arr < INT16_MIN) | (arr > INT16_MAX)).any():
            raise ValueError("coefficient exceeds the 16-bit storage pattern")
    return ((lsb & 0xFFFF) | ((msb & 0xFFFF) << 16)).astype(np.int64)


def unpack_words(words) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_words`, sign-extending both halves."""
    w = _vec4(words)

    def sign_extend(v: np.ndarray) -> np.ndarray:
        v = v & 0xFFFF
        return np.where(v > INT16_MAX, v - (1 << 16), v).astype(np.int64)

    return sign_extend(w), sign_extend(w >> 16)


def pack_atom(rows: list, column: int) -> np.ndarray:
    """One Pack_LSB_MSB execution: gather column ``column`` of four rows.

    Between the row and column passes of a 4x4 transform the coefficient
    matrix must be transposed; with the 16-bit packed storage pattern one
    Pack execution assembles one column out of the packed row registers.
    Behaviourally: column extraction, bit-exact through a pack/unpack
    round trip.
    """
    if len(rows) != 4:
        raise ValueError("pack operates on the four row vectors")
    if not 0 <= column < 4:
        raise ValueError("column index out of range")
    gathered = []
    for row in rows:
        row = _vec4(row)
        # Route the element through the packed register pair exactly as
        # the hardware would: low half carries even, high half odd lanes.
        packed = pack_words(row[[0, 2, 0, 2]], row[[1, 3, 1, 3]])
        lsb, msb = unpack_words(packed)
        value = lsb[column // 2] if column % 2 == 0 else msb[column // 2]
        gathered.append(value)
    return np.array(gathered, dtype=np.int64)


def load_atom(memory, address: int) -> np.ndarray:
    """Static-fabric Load: fetch four consecutive values."""
    if address < 0 or address + 4 > len(memory):
        raise ValueError("load out of bounds")
    return np.asarray(memory[address : address + 4], dtype=np.int64)


def add_atom(values_a, values_b) -> np.ndarray:
    """Static-fabric Add: four parallel additions."""
    return _vec4(values_a) + _vec4(values_b)


def store_atom(memory, address: int, values) -> None:
    """Static-fabric Store: write four consecutive values."""
    v = _vec4(values)
    if address < 0 or address + 4 > len(memory):
        raise ValueError("store out of bounds")
    memory[address : address + 4] = v


@dataclass
class AtomExecutionCounter:
    """Counts Atom executions while delegating to the behavioural models.

    Used to verify the dataflow requirements the paper states (e.g. one
    HT_4x4 = 4 Transform + 4 Pack executions) and to feed the dataflow
    scheduler with measured execution counts.
    """

    counts: dict[str, int] = field(default_factory=dict)

    def _bump(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def transform(self, values, *, mode: str, ht_shift: bool = False) -> np.ndarray:
        self._bump("Transform")
        return transform_atom(values, mode=mode, ht_shift=ht_shift)

    def satd(self, values) -> int:
        self._bump("SATD")
        return satd_atom(values)

    def quadsub(self, originals, predictions) -> np.ndarray:
        self._bump("QuadSub")
        return quadsub_atom(originals, predictions)

    def pack(self, rows: list, column: int) -> np.ndarray:
        self._bump("Pack")
        return pack_atom(rows, column)

    def load(self, memory, address: int) -> np.ndarray:
        self._bump("Load")
        return load_atom(memory, address)

    def add(self, values_a, values_b) -> np.ndarray:
        self._bump("Add")
        return add_atom(values_a, values_b)

    def store(self, memory, address: int, values) -> None:
        self._bump("Store")
        store_atom(memory, address, values)

    def reset(self) -> None:
        self.counts.clear()
