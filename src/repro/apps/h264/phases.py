"""The Fig. 1 story as a simulation: per-frame hot-spot phase rotation.

Fig. 1 motivates RISPP with the H.264 encoder's four phase groups —
Motion Estimation (ME), Motion Compensation (MC), Transform & Quantization
(TQ) and Loop Filter (LF) — executing one after another within each
frame: an extensible processor carries dedicated hardware for all four
simultaneously although only one is active at a time, while RISPP holds
roughly the largest phase's hardware and *rotates*: "While ME is executed
the unused hardware will be prepared for the next hot spot" (§2).

:func:`run_phase_rotation` drives a :class:`~repro.runtime.manager.RisppRuntime`
through ``frames`` frames of the phase sequence, firing each phase's
forecasts one phase *ahead* (the Rotation-in-Advance scheme), and
reports per-phase hardware fractions, per-frame cycles, and the area
comparison against the extensible-processor baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.library import SILibrary
from ...core.selection import ForecastedSI, select_greedy
from ...runtime.manager import RisppRuntime
from .extensions import build_extended_library

#: Cycles per frame at 100 MHz, 30 fps.
FRAME_CYCLES = 3_300_000

#: The Fig. 1 phases in execution order: (name, share of frame time,
#: SI workload per frame).
PHASES: tuple[tuple[str, float, dict[str, int]], ...] = (
    ("ME", 0.55, {"SATD_4x4": 3000}),
    ("MC", 0.17, {"MC_HPEL": 800}),
    ("TQ", 0.16, {"DCT_4x4": 1200, "HT_4x4": 75, "HT_2x2": 150}),
    ("LF", 0.12, {"LF_EDGE": 1500}),
)


@dataclass
class PhaseResult:
    """One phase execution within one frame."""

    frame: int
    phase: str
    si_cycles: int
    hw_executions: int
    sw_executions: int

    @property
    def hw_fraction(self) -> float:
        total = self.hw_executions + self.sw_executions
        return self.hw_executions / total if total else 0.0


@dataclass
class PhaseRotationReport:
    """The whole run: per-phase results plus aggregate numbers."""

    results: list[PhaseResult] = field(default_factory=list)
    rotations: int = 0
    containers: int = 0

    def frames(self) -> int:
        return 1 + max((r.frame for r in self.results), default=-1)

    def phase_results(self, phase: str) -> list[PhaseResult]:
        return [r for r in self.results if r.phase == phase]

    def frame_si_cycles(self, frame: int) -> int:
        return sum(r.si_cycles for r in self.results if r.frame == frame)

    def steady_state_hw_fraction(self, phase: str) -> float:
        """HW fraction of the phase, ignoring the cold first frame."""
        steady = [r for r in self.phase_results(phase) if r.frame > 0]
        if not steady:
            return 0.0
        hw = sum(r.hw_executions for r in steady)
        total = sum(r.hw_executions + r.sw_executions for r in steady)
        return hw / total if total else 0.0


def run_phase_rotation(
    *,
    frames: int = 4,
    containers: int = 8,
    lookahead: bool = True,
    library: SILibrary | None = None,
) -> PhaseRotationReport:
    """Simulate ``frames`` frames of the ME/MC/TQ/LF rotation.

    With ``lookahead`` each phase's forecasts fire one phase early (the
    paper's scheme); without it they fire at the phase boundary — the
    rotation then eats into the phase itself (the comparison point).
    """
    if frames < 1:
        raise ValueError("need at least one frame")
    library = library if library is not None else build_extended_library()
    runtime = RisppRuntime(library, containers, core_mhz=100.0)
    report = PhaseRotationReport(containers=containers)

    schedule: list[tuple[int, str, dict[str, int], int]] = []
    now = 0
    for frame in range(frames):
        for name, share, workload in PHASES:
            schedule.append((frame, name, workload, now))
            now += round(share * FRAME_CYCLES)

    for index, (frame, name, workload, start) in enumerate(schedule):
        # Forecast maintenance at the phase boundary: retire forecasts of
        # the phase that just ended, fire the next phase's early.
        if index > 0:
            _prev_frame, prev_name, prev_workload, _s = schedule[index - 1]
            for si in prev_workload:
                if si not in workload:
                    runtime.forecast_end(si, start, task=prev_name)
        if lookahead and index + 1 < len(schedule):
            _nf, next_name, next_workload, _ns = schedule[index + 1]
            for si, count in next_workload.items():
                runtime.forecast(
                    si, start, task=next_name, expected=count, priority=0.5
                )
        for si, count in workload.items():
            runtime.forecast(si, start, task=name, expected=count, priority=2.0)

        clock = start
        si_cycles = 0
        hw_before = runtime.stats.hw_executions
        sw_before = runtime.stats.sw_executions
        for si, count in workload.items():
            for _ in range(count):
                cycles = runtime.execute_si(si, clock, task=name)
                si_cycles += cycles
                clock += cycles
        report.results.append(
            PhaseResult(
                frame=frame,
                phase=name,
                si_cycles=si_cycles,
                hw_executions=runtime.stats.hw_executions - hw_before,
                sw_executions=runtime.stats.sw_executions - sw_before,
            )
        )

    report.rotations = runtime.stats.rotations_requested
    return report


@dataclass(frozen=True)
class PhaseAreaComparison:
    """Atom-slice area of RISPP's containers vs per-phase dedicated SIs."""

    extensible_slices: int
    rispp_slices: int
    per_phase_slices: dict[str, int]

    @property
    def saving_pct(self) -> float:
        return 100.0 * (self.extensible_slices - self.rispp_slices) / self.extensible_slices


def phase_area_comparison(
    *, containers: int = 8, library: SILibrary | None = None
) -> PhaseAreaComparison:
    """Fig. 1's area panel from the actual molecule catalogue.

    The extensible processor fabricates, for every phase, the molecules a
    design-time selection picks under the same per-phase atom budget; its
    area is the *sum* over phases.  RISPP's area is the container bank.
    """
    library = library if library is not None else build_extended_library()
    container_slices = 1024 * containers
    per_phase: dict[str, int] = {}
    for name, _share, workload in PHASES:
        requests = [
            ForecastedSI(library.get(si), count) for si, count in workload.items()
        ]
        selection = select_greedy(library, requests, containers)
        slices = 0
        for impl in selection.chosen.values():
            if impl is None:
                continue
            for kind_name in impl.molecule.kinds_used():
                kind = library.catalogue.get(kind_name)
                if kind.reconfigurable:
                    slices += (kind.slices or 400) * impl.molecule.count(kind_name)
        per_phase[name] = slices
    return PhaseAreaComparison(
        extensible_slices=sum(per_phase.values()),
        rispp_slices=container_slices,
        per_phase_slices=per_phase,
    )
