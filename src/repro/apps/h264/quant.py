"""H.264 quantization / rescaling and the inverse core transform.

Completes the TQ (Transform and Quantization) hot-spot group of Fig. 1:
the standard's multiplier (MF) and rescale (V) tables, the QP-dependent
quantization of 4x4 coefficient blocks, and the inverse integer transform
the decoder-in-the-encoder uses to build reference frames.  The pair is
exact in the H.264 sense: reconstruction error is bounded by the
quantization step (error <= 1 at QP 0, doubling every 6 QP).
"""

from __future__ import annotations

import numpy as np

#: Quantization multipliers MF[qp % 6][position class] (FIPS-agnostic,
#: H.264 §8.5/JM tables).
MF = (
    (13107, 5243, 8066),
    (11916, 4660, 7490),
    (10082, 4194, 6554),
    (9362, 3647, 5825),
    (8192, 3355, 5243),
    (7282, 2893, 4559),
)

#: Rescale factors V[qp % 6][position class].
V = (
    (10, 16, 13),
    (11, 18, 14),
    (13, 20, 16),
    (14, 23, 18),
    (16, 25, 20),
    (18, 29, 23),
)

MAX_QP = 51


def position_class(i: int, j: int) -> int:
    """The three scaling classes of a 4x4 coefficient position."""
    if i % 2 == 0 and j % 2 == 0:
        return 0
    if i % 2 == 1 and j % 2 == 1:
        return 1
    return 2


def _check_qp(qp: int) -> None:
    if not 0 <= qp <= MAX_QP:
        raise ValueError(f"QP must be within [0, {MAX_QP}], got {qp}")


def _check_block(block) -> np.ndarray:
    arr = np.asarray(block, dtype=np.int64)
    if arr.shape != (4, 4):
        raise ValueError(f"expected a 4x4 coefficient block, got {arr.shape}")
    return arr


def quantize_4x4(coefficients, qp: int, *, intra: bool = True) -> np.ndarray:
    """Quantize forward-transform coefficients at quantization parameter ``qp``.

    ``Z = sign(W) * ((|W| * MF + f) >> (15 + qp/6))`` with the standard's
    intra (1/3) or inter (1/6) rounding offset.
    """
    _check_qp(qp)
    w = _check_block(coefficients)
    qbits = 15 + qp // 6
    f = (1 << qbits) // (3 if intra else 6)
    z = np.zeros((4, 4), dtype=np.int64)
    for i in range(4):
        for j in range(4):
            mf = MF[qp % 6][position_class(i, j)]
            magnitude = (abs(int(w[i, j])) * mf + f) >> qbits
            z[i, j] = int(np.sign(w[i, j])) * magnitude
    return z


def dequantize_4x4(levels, qp: int) -> np.ndarray:
    """Rescale quantized levels: ``W' = Z * V << (qp / 6)``."""
    _check_qp(qp)
    z = _check_block(levels)
    w = np.zeros((4, 4), dtype=np.int64)
    for i in range(4):
        for j in range(4):
            w[i, j] = int(z[i, j]) * V[qp % 6][position_class(i, j)] << (qp // 6)
    return w


def _inverse_butterfly(x) -> np.ndarray:
    """The 1-D inverse core transform (with its >>1 half-coefficients)."""
    x0, x1, x2, x3 = (int(v) for v in x)
    e0 = x0 + x2
    e1 = x0 - x2
    e2 = (x1 >> 1) - x3
    e3 = x1 + (x3 >> 1)
    return np.array([e0 + e3, e1 + e2, e1 - e2, e0 - e3], dtype=np.int64)


def inverse_dct_4x4(coefficients) -> np.ndarray:
    """Inverse 4x4 integer transform with the final ``(x + 32) >> 6``.

    Operates on *rescaled* coefficients (:func:`dequantize_4x4` output);
    the scaling chain makes forward -> quant -> rescale -> inverse exact
    up to the quantization step.
    """
    w = _check_block(coefficients)
    rows = np.vstack([_inverse_butterfly(r) for r in w])
    cols = np.vstack([_inverse_butterfly(c) for c in rows.T]).T
    return (cols + 32) >> 6


def reconstruct_4x4(coefficients, qp: int, *, intra: bool = True) -> np.ndarray:
    """The full TQ round trip: quantize, rescale, inverse-transform."""
    levels = quantize_4x4(coefficients, qp, intra=intra)
    return inverse_dct_4x4(dequantize_4x4(levels, qp))


def quantization_step(qp: int) -> float:
    """The effective quantizer step size Qstep(qp) = 0.625 * 2^(qp/6)."""
    _check_qp(qp)
    base = (0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125)[qp % 6]
    return base * (1 << (qp // 6))
