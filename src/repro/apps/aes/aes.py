"""AES-128 (FIPS-197): the second case-study application.

The paper's Fig. 3 shows the BB graph of an AES application with
profiling information and Forecast-Candidate computation.  This module
is a complete, self-contained AES-128 implementation — key expansion,
encryption and decryption — used both functionally (test vectors) and as
the substrate whose basic-block structure feeds the forecast pipeline
(:mod:`repro.apps.aes.blocks`).
"""

from __future__ import annotations

SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

BLOCK_BYTES = 16
KEY_BYTES = 16
ROUNDS = 10


def xtime(b: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook double-and-add)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = xtime(a)
    return result


def _check_block(data: bytes, what: str) -> None:
    if len(data) != BLOCK_BYTES:
        raise ValueError(f"{what} must be {BLOCK_BYTES} bytes, got {len(data)}")


def expand_key(key: bytes) -> list[list[int]]:
    """FIPS-197 key expansion: 11 round keys of 16 bytes each."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"AES-128 key must be {KEY_BYTES} bytes")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [SBOX[b] for b in temp]  # SubWord
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        sum((words[4 * r + c] for c in range(4)), [])
        for r in range(ROUNDS + 1)
    ]


def sub_bytes(state: list[int]) -> list[int]:
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: list[int]) -> list[int]:
    return [INV_SBOX[b] for b in state]


def shift_rows(state: list[int]) -> list[int]:
    """Column-major state: byte (row, col) sits at 4*col + row."""
    out = [0] * 16
    for row in range(4):
        for col in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return out


def inv_shift_rows(state: list[int]) -> list[int]:
    out = [0] * 16
    for row in range(4):
        for col in range(4):
            out[4 * ((col + row) % 4) + row] = state[4 * col + row]
    return out


def mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
        out[4 * col + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)
    return out


def inv_mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = (
            gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9)
        )
        out[4 * col + 1] = (
            gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13)
        )
        out[4 * col + 2] = (
            gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11)
        )
        out[4 * col + 3] = (
            gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14)
        )
    return out


def add_round_key(state: list[int], round_key: list[int]) -> list[int]:
    return [a ^ b for a, b in zip(state, round_key)]


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """AES-128 encryption of one 16-byte block."""
    _check_block(plaintext, "plaintext")
    round_keys = expand_key(key)
    state = add_round_key(list(plaintext), round_keys[0])
    for rnd in range(1, ROUNDS):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[rnd])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[ROUNDS])
    return bytes(state)


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """AES-128 decryption of one 16-byte block."""
    _check_block(ciphertext, "ciphertext")
    round_keys = expand_key(key)
    state = add_round_key(list(ciphertext), round_keys[ROUNDS])
    for rnd in range(ROUNDS - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, round_keys[rnd])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_keys[0])
    return bytes(state)


def encrypt_ecb(plaintext: bytes, key: bytes) -> bytes:
    """ECB over whole blocks (workload helper; not for real-world use)."""
    if len(plaintext) % BLOCK_BYTES:
        raise ValueError("plaintext must be a multiple of the block size")
    return b"".join(
        encrypt_block(plaintext[i : i + BLOCK_BYTES], key)
        for i in range(0, len(plaintext), BLOCK_BYTES)
    )
