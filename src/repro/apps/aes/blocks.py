"""AES as a profiled BB graph with Special Instructions (paper Fig. 3).

The paper's Fig. 3 is "the BB-graph from the AES application as it is
automatically generated from our tool-chain", coloured by profiled
execution time, with SI usages marked and FC candidates computed.  Here
the same pipeline is reproduced end to end:

1. :func:`build_aes_program` — AES-128 as an IR program whose blocks
   *really encrypt* (the block actions drive :mod:`repro.apps.aes.aes`),
   annotated with the SI calls of each block;
2. :func:`build_aes_library` — an SI library for the AES hot spots
   (SubBytes/ShiftRows, MixColumns, key expansion) over S-box/GF-
   multiplier/XOR-tree atoms;
3. :func:`profile_aes` — execute over random plaintexts and return the
   profiled CFG;
4. :func:`aes_forecast_report` — run the full forecast pipeline and
   return candidates, forecast points and the DOT rendering of Fig. 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...cfg.graph import ControlFlowGraph
from ...core.atom import AtomCatalogue, AtomKind
from ...core.library import SILibrary
from ...core.si import MoleculeImpl, SpecialInstruction
from ...forecast import (
    FCCandidate,
    ForecastAnnotation,
    ForecastDecisionFunction,
    determine_candidates,
    run_forecast_pipeline,
)
from ...sim.executor import profile_program
from ...sim.ir import Branch, Jump, Program
from .aes import (
    ROUNDS,
    add_round_key,
    expand_key,
    mix_columns,
    shift_rows,
    sub_bytes,
)

#: Software latencies of the AES SIs (cycles; byte-wise reference code on
#: the scalar core).
AES_SOFTWARE_CYCLES = {"SUBBYTES": 320, "MIXCOL": 640, "KEYEXP": 200}


def build_aes_catalogue() -> AtomCatalogue:
    """S-box lookup, GF(2^8) multiplier and XOR-tree atoms."""
    return AtomCatalogue.of(
        [
            AtomKind("SBoxLUT", bitstream_bytes=61_000,
                     description="dual-port S-box lookup table"),
            AtomKind("GFMul", bitstream_bytes=57_000,
                     description="four parallel GF(2^8) constant multipliers"),
            AtomKind("XorTree", bitstream_bytes=55_000,
                     description="wide XOR reduction network"),
            AtomKind("Fetch", reconfigurable=False,
                     description="static operand fetch"),
        ]
    )


def build_aes_library() -> SILibrary:
    """The AES SI library: SUBBYTES, MIXCOL and KEYEXP."""
    catalogue = build_aes_catalogue()
    space = catalogue.space

    def impl(counts: dict[str, int], cycles: int) -> MoleculeImpl:
        label = " ".join(f"{k[0]}{v}" for k, v in counts.items())
        return MoleculeImpl(space.molecule(counts), cycles, label=label)

    subbytes = SpecialInstruction(
        "SUBBYTES",
        space,
        AES_SOFTWARE_CYCLES["SUBBYTES"],
        [
            impl({"SBoxLUT": 1, "Fetch": 1}, 40),
            impl({"SBoxLUT": 2, "Fetch": 1}, 24),
            impl({"SBoxLUT": 4, "Fetch": 2}, 16),
        ],
        description="SubBytes + ShiftRows over the packed state",
    )
    mixcol = SpecialInstruction(
        "MIXCOL",
        space,
        AES_SOFTWARE_CYCLES["MIXCOL"],
        [
            impl({"GFMul": 1, "XorTree": 1, "Fetch": 1}, 48),
            impl({"GFMul": 2, "XorTree": 1, "Fetch": 1}, 32),
            impl({"GFMul": 4, "XorTree": 2, "Fetch": 2}, 20),
        ],
        description="MixColumns over all four columns",
    )
    keyexp = SpecialInstruction(
        "KEYEXP",
        space,
        AES_SOFTWARE_CYCLES["KEYEXP"],
        [
            impl({"SBoxLUT": 1, "XorTree": 1, "Fetch": 1}, 30),
            impl({"SBoxLUT": 2, "XorTree": 1, "Fetch": 1}, 22),
        ],
        description="one round-key expansion step",
    )
    return SILibrary(catalogue, [subbytes, mixcol, keyexp])


def build_aes_program() -> Program:
    """AES-128 encryption as an IR program that really encrypts.

    The environment must provide ``plaintext`` and ``key`` (16-byte
    ``bytes`` each); after execution it holds ``ciphertext``.
    """
    p = Program("setup")

    def do_setup(env):
        env["round_keys"] = [list(env["key"])]
        env["kx_round"] = 0
        env["round"] = 1

    def do_keyexp(env):
        # Expand one round key per block execution (10 iterations).
        env["kx_round"] += 1
        env["round_keys"] = [
            rk for rk in expand_key(bytes(env["key"]))[: env["kx_round"] + 1]
        ]

    def do_initial_ark(env):
        env["state"] = add_round_key(list(env["plaintext"]), env["round_keys"][0])

    def do_round(env):
        state = sub_bytes(env["state"])
        state = shift_rows(state)
        state = mix_columns(state)
        env["state"] = add_round_key(state, env["round_keys"][env["round"]])
        env["round"] += 1

    def do_final(env):
        state = sub_bytes(env["state"])
        state = shift_rows(state)
        env["state"] = add_round_key(state, env["round_keys"][ROUNDS])

    def do_output(env):
        env["ciphertext"] = bytes(env["state"])

    p.block("setup", cycles=40, action=do_setup, terminator=Jump("keyexp"))
    p.block(
        "keyexp",
        cycles=25,
        si_calls={"KEYEXP": 1},
        action=do_keyexp,
        terminator=Branch(lambda env: env["kx_round"] < ROUNDS, "keyexp", "init_ark"),
    )
    p.block("init_ark", cycles=30, action=do_initial_ark, terminator=Jump("round"))
    p.block(
        "round",
        cycles=60,
        si_calls={"SUBBYTES": 1, "MIXCOL": 1},
        action=do_round,
        terminator=Branch(lambda env: env["round"] < ROUNDS, "round", "final"),
    )
    p.block("final", cycles=45, si_calls={"SUBBYTES": 1}, action=do_final,
            terminator=Jump("output"))
    p.block("output", cycles=15, action=do_output)
    return p


def profile_aes(*, runs: int = 8, seed: int = 0) -> ControlFlowGraph:
    """Profile the AES program over random plaintexts (Fig. 3's colouring)."""
    rng = random.Random(seed)

    def env_factory(_i: int):
        return {
            "plaintext": bytes(rng.randrange(256) for _ in range(16)),
            "key": bytes(rng.randrange(256) for _ in range(16)),
        }

    cfg, results = profile_program(build_aes_program(), env_factory=env_factory, runs=runs)
    # Functional sanity: the IR must really encrypt.
    from .aes import encrypt_block

    for result in results:
        expected = encrypt_block(result.env["plaintext"], result.env["key"])
        if result.env["ciphertext"] != expected:
            raise AssertionError("AES IR program produced a wrong ciphertext")
    return cfg


def default_aes_fdfs(*, alpha: float = 1.0) -> dict[str, ForecastDecisionFunction]:
    """FDFs for the three AES SIs, scaled to the program's block costs.

    The AES BB graph is small (hundreds of cycles end to end) compared to
    millisecond rotations; a real deployment encrypts thousands of blocks
    per forecast.  ``t_rot`` is therefore scaled to the intra-program
    distances so Fig. 3's candidate structure is visible at program scope
    (documented substitution; the algorithms are unchanged).
    """
    fdfs = {}
    for name, sw in AES_SOFTWARE_CYCLES.items():
        hw = {"SUBBYTES": 16, "MIXCOL": 20, "KEYEXP": 22}[name]
        fdfs[name] = ForecastDecisionFunction(
            t_rot=60.0,
            t_sw=float(sw),
            t_hw=float(hw),
            rotation_energy=2.0 * (sw - hw),
            alpha=alpha,
            k_near=40.0,
            k_far=10.0,
        )
    return fdfs


@dataclass
class AESForecastReport:
    """Everything Fig. 3 shows, as data."""

    cfg: ControlFlowGraph
    candidates: list[FCCandidate]
    annotation: ForecastAnnotation
    dot: str


def aes_forecast_report(
    *, runs: int = 8, containers: int = 4, alpha: float = 1.0, seed: int = 0
) -> AESForecastReport:
    """Run the complete compile-time pipeline on profiled AES (Fig. 3)."""
    cfg = profile_aes(runs=runs, seed=seed)
    library = build_aes_library()
    fdfs = default_aes_fdfs(alpha=alpha)
    candidates: list[FCCandidate] = []
    for name, fdf in fdfs.items():
        candidates.extend(determine_candidates(cfg, name, fdf))
    annotation = run_forecast_pipeline(cfg, library, fdfs, containers)
    dot = cfg.to_dot(highlight=[c.block_id for c in candidates])
    return AESForecastReport(
        cfg=cfg, candidates=candidates, annotation=annotation, dot=dot
    )
