"""Case-study applications: the H.264 encoder pipeline and AES."""
