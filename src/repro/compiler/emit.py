"""From SI candidate to rotatable Special Instruction.

The back half of the automatic flow: take an identified
:class:`~repro.compiler.identify.SICandidate`, group its operations into
Atom kinds (a ``kind_map`` decides which operation classes share one
reusable data path — e.g. ``add``/``sub`` both map onto a butterfly
Atom, exactly how Fig. 9's Transform serves three different transforms),
build the Atom-level dataflow, and let :mod:`repro.core.molgen` generate
the molecule catalogue.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.atom import AtomCatalogue, AtomKind
from ..core.molgen import GenerationReport, generate_si
from ..core.schedule import AtomOp, Dataflow
from ..core.si import SpecialInstruction
from .identify import SICandidate
from .opgraph import OperationGraph

#: Default grouping of operation classes into Atom kinds: arithmetic
#: add/sub share a butterfly-style data path; shifts share the shifter.
DEFAULT_KIND_MAP: dict[str, str] = {
    "add": "AddSub",
    "sub": "AddSub",
    "shl": "Shift",
    "shr": "Shift",
    "abs": "AbsAcc",
    "acc": "AbsAcc",
    "mul": "Mult",
    "xor": "XorNet",
    "and": "BitOps",
    "or": "BitOps",
    "min": "MinMax",
    "max": "MinMax",
}

#: Synthetic bitstream size per auto-generated Atom kind (bytes) — sized
#: like the Table 1 atoms so rotation latencies stay realistic.
DEFAULT_BITSTREAM_BYTES = 58_000


def candidate_dataflow(
    graph: OperationGraph,
    candidate: SICandidate,
    kind_map: Mapping[str, str] | None = None,
) -> Dataflow:
    """The Atom-level dataflow of one candidate (deps within the subset)."""
    mapping = dict(DEFAULT_KIND_MAP)
    if kind_map:
        mapping.update(kind_map)
    ops = []
    for op_id in sorted(candidate.ops):
        op = graph.get(op_id)
        atom_kind = mapping.get(op.kind, op.kind.capitalize())
        deps = tuple(
            p for p in graph.producers(op_id) if p in candidate.ops
        )
        ops.append(AtomOp(op_id, atom_kind, deps, latency=op.hw_latency))
    return Dataflow(ops)


def catalogue_for_candidate(
    graph: OperationGraph,
    candidate: SICandidate,
    kind_map: Mapping[str, str] | None = None,
    *,
    bitstream_bytes: int = DEFAULT_BITSTREAM_BYTES,
) -> AtomCatalogue:
    """An atom catalogue covering exactly the candidate's Atom kinds."""
    dataflow = candidate_dataflow(graph, candidate, kind_map)
    kinds = sorted(dataflow.executions_per_kind())
    return AtomCatalogue.of(
        [
            AtomKind(
                kind,
                bitstream_bytes=bitstream_bytes,
                description="auto-generated from an identified SI",
            )
            for kind in kinds
        ]
    )


def si_from_candidate(
    name: str,
    graph: OperationGraph,
    candidate: SICandidate,
    *,
    kind_map: Mapping[str, str] | None = None,
    catalogue: AtomCatalogue | None = None,
    software_cycles: int | None = None,
    counts_allowed: tuple[int, ...] | None = (1, 2, 4),
    issue_overhead: int = 1,
) -> tuple[SpecialInstruction, AtomCatalogue, GenerationReport]:
    """Generate a complete SI (with molecule catalogue) from a candidate.

    ``catalogue`` may supply an existing architecture (the new SI then
    shares its atom space); otherwise a minimal catalogue covering the
    candidate's kinds is created.  ``software_cycles`` defaults to the
    candidate's measured core latency.
    """
    dataflow = candidate_dataflow(graph, candidate, kind_map)
    if catalogue is None:
        catalogue = catalogue_for_candidate(graph, candidate, kind_map)
    else:
        missing = [
            k
            for k in dataflow.executions_per_kind()
            if k not in catalogue
        ]
        if missing:
            raise ValueError(
                f"the supplied catalogue lacks atom kinds {missing}"
            )
    sw = software_cycles if software_cycles is not None else candidate.software_cycles
    si, report = generate_si(
        name,
        dataflow,
        catalogue.space,
        sw,
        counts_allowed=counts_allowed,
        issue_overhead=issue_overhead,
        description=(
            f"identified SI over ops {sorted(candidate.ops)}; "
            f"{len(candidate.inputs)} inputs, {len(candidate.outputs)} outputs"
        ),
    )
    return si, catalogue, report
