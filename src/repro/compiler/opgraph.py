"""Operation-level dataflow graphs of basic blocks.

The SI-identification pass (paper §6: "Automatic detection and generation
of SIs might be done similar to [17] or [18]") operates below the Atom
level: on the scalar operations of a hot basic block.  An
:class:`OperationGraph` is a DAG of :class:`Operation` nodes; candidate
SIs are *convex* subgraphs (no dataflow path may leave the subgraph and
re-enter it — otherwise the SI could not execute atomically) within the
core's register-port constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable


def is_external(operand: str) -> bool:
    """External values (block inputs) are written ``%name``."""
    return operand.startswith("%")


@dataclass(frozen=True)
class Operation:
    """One scalar operation.

    Parameters
    ----------
    op_id:
        Unique name within the graph.
    kind:
        Operation class (``add``, ``sub``, ``shl``, ``mul``, ``abs``,
        ``load``, ...).
    operands:
        Producing operation ids, or ``%name`` for block-external inputs.
    latency:
        Software latency on the core, cycles (issue + execute).
    hw_latency:
        Latency of the operation inside a custom data path, cycles —
        chained logic typically fits one level per cycle regardless of
        the core's per-instruction cost.
    """

    op_id: str
    kind: str
    operands: tuple[str, ...] = ()
    latency: int = 1
    hw_latency: int = 1

    def __post_init__(self) -> None:
        if not self.op_id or is_external(self.op_id):
            raise ValueError("operation ids must be non-empty and not external")
        if not self.kind:
            raise ValueError("operation needs a kind")
        if self.latency < 1 or self.hw_latency < 1:
            raise ValueError("latencies must be at least one cycle")


class OperationGraph:
    """An acyclic graph of scalar operations with designated live-outs."""

    def __init__(self, ops: Iterable[Operation], live_outs: Iterable[str] = ()):
        self._ops: dict[str, Operation] = {}
        for op in ops:
            if op.op_id in self._ops:
                raise ValueError(f"duplicate operation {op.op_id!r}")
            self._ops[op.op_id] = op
        for op in self._ops.values():
            for operand in op.operands:
                if not is_external(operand) and operand not in self._ops:
                    raise ValueError(
                        f"operation {op.op_id!r} uses unknown producer {operand!r}"
                    )
        self.live_outs = tuple(live_outs)
        for out in self.live_outs:
            if out not in self._ops:
                raise ValueError(f"live-out {out!r} is not an operation")
        self._consumers: dict[str, list[str]] = {o: [] for o in self._ops}
        for op in self._ops.values():
            for operand in op.operands:
                if not is_external(operand):
                    self._consumers[operand].append(op.op_id)
        self._order = self._topological_order()
        self._descendants = self._compute_descendants()

    # -- structure ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops.values())

    def __contains__(self, op_id: object) -> bool:
        return op_id in self._ops

    def get(self, op_id: str) -> Operation:
        return self._ops[op_id]

    def op_ids(self) -> list[str]:
        return list(self._ops)

    def consumers(self, op_id: str) -> list[str]:
        return list(self._consumers[op_id])

    def producers(self, op_id: str) -> list[str]:
        return [o for o in self._ops[op_id].operands if not is_external(o)]

    def _topological_order(self) -> list[str]:
        indegree = {
            op_id: len(self.producers(op_id)) for op_id in self._ops
        }
        ready = sorted(o for o, d in indegree.items() if d == 0)
        order: list[str] = []
        while ready:
            op_id = ready.pop(0)
            order.append(op_id)
            for consumer in self._consumers[op_id]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
            ready.sort()
        if len(order) != len(self._ops):
            raise ValueError("operation graph contains a cycle")
        return order

    def _compute_descendants(self) -> dict[str, frozenset[str]]:
        desc: dict[str, frozenset[str]] = {}
        for op_id in reversed(self._order):
            acc: set[str] = set()
            for consumer in self._consumers[op_id]:
                acc.add(consumer)
                acc |= desc[consumer]
            desc[op_id] = frozenset(acc)
        return desc

    # -- subgraph queries -------------------------------------------------------

    def inputs_of(self, subset: frozenset[str]) -> set[str]:
        """Values flowing *into* the subset (externals + outside producers)."""
        inputs: set[str] = set()
        for op_id in subset:
            for operand in self._ops[op_id].operands:
                if is_external(operand) or operand not in subset:
                    inputs.add(operand)
        return inputs

    def outputs_of(self, subset: frozenset[str]) -> set[str]:
        """Subset operations whose value is needed outside the subset."""
        outputs: set[str] = set()
        for op_id in subset:
            if op_id in self.live_outs:
                outputs.add(op_id)
                continue
            if any(c not in subset for c in self._consumers[op_id]):
                outputs.add(op_id)
        return outputs

    def is_convex(self, subset: frozenset[str]) -> bool:
        """No dataflow path leaves the subset and re-enters it."""
        for outside in self._ops:
            if outside in subset:
                continue
            has_ancestor_inside = any(
                outside in self._descendants[s] for s in subset
            )
            if not has_ancestor_inside:
                continue
            if self._descendants[outside] & subset:
                return False
        return True

    def software_cycles(self, subset: frozenset[str]) -> int:
        """Sequential core execution: the sum of the operations' latencies."""
        return sum(self._ops[o].latency for o in subset)

    def critical_path_cycles(self, subset: frozenset[str]) -> int:
        """Fully spatial hardware execution of the subset (hw latencies)."""
        finish: dict[str, int] = {}
        for op_id in self._order:
            if op_id not in subset:
                continue
            op = self._ops[op_id]
            start = max(
                (finish[p] for p in op.operands if p in subset),
                default=0,
            )
            finish[op_id] = start + op.hw_latency
        return max(finish.values(), default=0)

    def operand_siblings(self, op_id: str) -> set[str]:
        """Operations sharing at least one operand with ``op_id``.

        Sibling adjacency lets the candidate search assemble
        multiple-output patterns whose halves are dataflow-independent but
        read the same values — like the transform butterfly, where
        ``e0 = x0 + x3`` and ``e3 = x0 - x3`` share both inputs.
        """
        siblings: set[str] = set()
        for operand in self._ops[op_id].operands:
            for other in self._ops:
                if other == op_id:
                    continue
                if operand in self._ops[other].operands:
                    siblings.add(other)
        return siblings

    def kinds_of(self, subset: frozenset[str]) -> dict[str, int]:
        """Operation-kind histogram of the subset."""
        counts: dict[str, int] = {}
        for op_id in subset:
            kind = self._ops[op_id].kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts
