"""Design-time compiler passes: SI identification and generation.

The automation the paper names as adjacent/future work (§6): enumerate
candidate Special Instructions in a basic block's operation graph under
register-port constraints ([17]/[18]-style), then emit rotatable SIs with
auto-generated molecule catalogues.
"""

from .emit import (
    DEFAULT_KIND_MAP,
    candidate_dataflow,
    catalogue_for_candidate,
    si_from_candidate,
)
from .identify import (
    Constraints,
    SICandidate,
    best_candidates,
    enumerate_si_candidates,
)
from .opgraph import Operation, OperationGraph, is_external

__all__ = [
    "Constraints",
    "DEFAULT_KIND_MAP",
    "Operation",
    "OperationGraph",
    "SICandidate",
    "best_candidates",
    "candidate_dataflow",
    "catalogue_for_candidate",
    "enumerate_si_candidates",
    "is_external",
    "si_from_candidate",
]
