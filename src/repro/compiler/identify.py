"""SI identification: enumerate candidate instruction-set extensions.

Implements the flavour of automatic SI detection the paper points to
([17] Atasu/Pozzi/Ienne DAC'03, [18] Sun et al. ICCAD'03): enumerate
*connected, convex* subgraphs of a basic block's operation graph under
the core's micro-architectural constraints (register-file read/write
ports bound the subgraph's inputs/outputs; memory and control operations
stay on the core), estimate each candidate's speed-up, and rank them.

The chosen candidate can then be handed to
:func:`repro.compiler.emit.si_from_candidate`, which groups operations
into Atom kinds and generates the molecule catalogue automatically —
closing the loop from plain code to a rotatable SI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opgraph import OperationGraph

#: Operation kinds that must stay on the core by default.
DEFAULT_FORBIDDEN_KINDS = frozenset({"load", "store", "branch", "call"})


@dataclass(frozen=True)
class Constraints:
    """Micro-architectural bounds for SI candidates.

    ``max_inputs``/``max_outputs`` model the register-file ports available
    to the SI interface (the paper's prototype extends the execution data
    path of a DLX, giving it the usual 2-read/1-write plus the packed
    32-bit trick — configurable here).  ``io_overhead_cycles`` prices
    operand marshalling per SI execution.
    """

    max_inputs: int = 4
    max_outputs: int = 2
    max_ops: int = 16
    min_ops: int = 2
    io_overhead_cycles: int = 1
    forbidden_kinds: frozenset[str] = DEFAULT_FORBIDDEN_KINDS

    def __post_init__(self) -> None:
        if self.max_inputs < 1 or self.max_outputs < 1:
            raise ValueError("an SI needs at least one input and one output")
        if self.min_ops < 1 or self.max_ops < self.min_ops:
            raise ValueError("invalid operation-count bounds")
        if self.io_overhead_cycles < 0:
            raise ValueError("I/O overhead cannot be negative")


@dataclass(frozen=True)
class SICandidate:
    """One candidate special instruction."""

    ops: frozenset[str]
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    software_cycles: int
    hardware_cycles: int
    kinds: dict[str, int] = field(hash=False, default_factory=dict)

    @property
    def saved_cycles(self) -> int:
        return self.software_cycles - self.hardware_cycles

    @property
    def speedup(self) -> float:
        return self.software_cycles / max(self.hardware_cycles, 1)

    def __len__(self) -> int:
        return len(self.ops)


def _neighbours(graph: OperationGraph, subset: frozenset[str]) -> set[str]:
    out: set[str] = set()
    for op_id in subset:
        out.update(graph.producers(op_id))
        out.update(graph.consumers(op_id))
        # Operand-sharing siblings: enables MIMO patterns with
        # dataflow-independent halves (e.g. the add/sub butterfly).
        out.update(graph.operand_siblings(op_id))
    return out - subset


def enumerate_si_candidates(
    graph: OperationGraph,
    constraints: Constraints | None = None,
    *,
    max_candidates: int = 10_000,
) -> list[SICandidate]:
    """All connected convex subgraphs satisfying the constraints, ranked.

    Breadth-first subgraph growth from every seed operation with
    de-duplication; convexity and the I/O bounds are checked on each
    candidate, growth stops at ``max_ops``.  Ranking: saved cycles
    (including the I/O overhead), ties towards fewer operations.
    """
    constraints = constraints or Constraints()
    allowed = {
        op.op_id
        for op in graph
        if op.kind not in constraints.forbidden_kinds
    }
    seen: set[frozenset[str]] = set()
    results: list[SICandidate] = []
    frontier: list[frozenset[str]] = []
    for seed in sorted(allowed):
        subset = frozenset({seed})
        if subset not in seen:
            seen.add(subset)
            frontier.append(subset)

    while frontier:
        subset = frontier.pop()
        if len(subset) < constraints.max_ops:
            for neighbour in sorted(_neighbours(graph, subset) & allowed):
                grown = subset | {neighbour}
                if grown in seen:
                    continue
                seen.add(grown)
                if len(seen) > max_candidates:
                    raise RuntimeError(
                        "candidate explosion; tighten the constraints"
                    )
                frontier.append(grown)
        if len(subset) < constraints.min_ops:
            continue
        candidate = _evaluate(graph, subset, constraints)
        if candidate is not None:
            results.append(candidate)

    results.sort(key=lambda c: (-c.saved_cycles, len(c.ops), sorted(c.ops)))
    return results


def _evaluate(
    graph: OperationGraph,
    subset: frozenset[str],
    constraints: Constraints,
) -> SICandidate | None:
    if not graph.is_convex(subset):
        return None
    inputs = graph.inputs_of(subset)
    outputs = graph.outputs_of(subset)
    if len(inputs) > constraints.max_inputs:
        return None
    if len(outputs) > constraints.max_outputs:
        return None
    software = graph.software_cycles(subset)
    hardware = graph.critical_path_cycles(subset) + constraints.io_overhead_cycles
    if hardware >= software:
        return None
    return SICandidate(
        ops=subset,
        inputs=tuple(sorted(inputs)),
        outputs=tuple(sorted(outputs)),
        software_cycles=software,
        hardware_cycles=hardware,
        kinds=graph.kinds_of(subset),
    )


def best_candidates(
    graph: OperationGraph,
    constraints: Constraints | None = None,
    *,
    count: int = 5,
    overlap: bool = False,
    max_candidates: int = 10_000,
) -> list[SICandidate]:
    """The top candidates; without ``overlap`` they are mutually disjoint.

    Greedy cover: the classic post-pass after enumeration — each selected
    SI removes its operations from the pool so the next pick accelerates
    *different* code.
    """
    if count < 1:
        raise ValueError("need at least one candidate")
    ranked = enumerate_si_candidates(
        graph, constraints, max_candidates=max_candidates
    )
    if overlap:
        return ranked[:count]
    chosen: list[SICandidate] = []
    used: set[str] = set()
    for candidate in ranked:
        if candidate.ops & used:
            continue
        chosen.append(candidate)
        used |= candidate.ops
        if len(chosen) == count:
            break
    return chosen
