"""Plain-text figure rendering: bar charts, series, and surfaces.

The paper's figures are regenerated as data by the benches; these helpers
turn the data into terminal-friendly visuals so a bench run *shows* the
figure it reproduces.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def render_bars(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 50,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart (Fig. 11/12 style; optional log scale)."""
    if not values:
        raise ValueError("nothing to plot")
    if width < 1:
        raise ValueError("width must be positive")
    vals = dict(values)
    if any(v < 0 for v in vals.values()):
        raise ValueError("bar values must be non-negative")

    def scale(v: float) -> float:
        if not log_scale:
            return v
        return math.log10(v) if v >= 1 else 0.0

    max_scaled = max(scale(v) for v in vals.values()) or 1.0
    label_w = max(len(k) for k in vals)
    lines = [title] if title else []
    for key, v in vals.items():
        bar = "#" * max(1 if v > 0 else 0, round(width * scale(v) / max_scaled))
        lines.append(f"{key.ljust(label_w)} |{bar} {v:,.0f}{unit}")
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Tabular multi-series rendering (Fig. 13 style Pareto fronts)."""
    if not series:
        raise ValueError("nothing to plot")
    lines = [title] if title else []
    lines.append(f"{x_label} -> {y_label}")
    for name, points in series.items():
        body = ", ".join(f"({x:g}, {y:g})" for x, y in points)
        lines.append(f"  {name}: {body}")
    return "\n".join(lines)


def render_surface(
    grid: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    *,
    title: str = "",
    levels: str = " .:-=+*#%@",
) -> str:
    """Character-shaded heat map (the Fig. 4 FDF surface)."""
    if not grid or not grid[0]:
        raise ValueError("empty surface")
    if len(grid) != len(row_labels):
        raise ValueError("row labels do not match the grid")
    if any(len(row) != len(col_labels) for row in grid):
        raise ValueError("column labels do not match the grid")
    finite = [v for row in grid for v in row if math.isfinite(v)]
    lo = min(finite)
    hi = max(finite)
    span = (hi - lo) or 1.0
    lines = [title] if title else []
    label_w = max(len(r) for r in row_labels)
    for label, row in zip(row_labels, grid):
        cells = []
        for v in row:
            if not math.isfinite(v):
                cells.append("!")
                continue
            idx = int((v - lo) / span * (len(levels) - 1))
            cells.append(levels[idx])
        lines.append(f"{label.rjust(label_w)} |{''.join(cells)}|")
    lines.append(" " * (label_w + 2) + "".join(
        c[-1] if c else " " for c in col_labels
    ))
    return "\n".join(lines)
