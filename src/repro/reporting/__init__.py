"""Terminal rendering of the paper's tables and figures."""

from .figures import render_bars, render_series, render_surface
from .tables import render_table
from .timeline import container_occupancy, render_container_timeline

__all__ = [
    "container_occupancy",
    "render_bars",
    "render_container_timeline",
    "render_series",
    "render_surface",
    "render_table",
]
