"""Container-occupancy timeline: the Fig. 6 chart from an event trace.

Fig. 6 draws one row per Atom Container showing which Atom occupies it
over time (with rotation periods hatched).  This renderer reconstructs
that view from the run-time event trace: each container row is divided
into time buckets; each bucket shows the Atom resident for most of the
bucket (lower case while rotating in).
"""

from __future__ import annotations

from ..sim.trace import EventKind, Trace


def container_occupancy(
    trace: Trace, num_containers: int
) -> dict[int, list[tuple[int, int, str, bool]]]:
    """Per-container occupancy intervals ``(start, end, atom, loading)``.

    Reconstructed from ROTATION_REQUESTED/STARTED semantics: an atom
    occupies its container from its rotation's start (loading until the
    completion) until the next rotation's start overwrites it.  ``end`` of
    the final interval is the trace's last cycle.
    """
    if num_containers < 1:
        raise ValueError("need at least one container")
    horizon = max((e.cycle for e in trace.events), default=0)
    for e in trace.of_kind(EventKind.ROTATION_REQUESTED):
        horizon = max(horizon, e.detail.get("finishes", 0))
    per_container: dict[int, list[tuple[int, int, str, bool]]] = {
        c: [] for c in range(num_containers)
    }
    requests: dict[int, list[tuple[int, int, str]]] = {
        c: [] for c in range(num_containers)
    }
    for e in trace.of_kind(EventKind.ROTATION_REQUESTED):
        cid = e.detail["container"]
        if cid in requests:
            requests[cid].append(
                (e.detail["starts"], e.detail["finishes"], e.detail["detail_atom"])
            )
    for cid, jobs in requests.items():
        jobs.sort()
        for i, (start, finish, atom) in enumerate(jobs):
            next_start = jobs[i + 1][0] if i + 1 < len(jobs) else horizon
            per_container[cid].append((start, min(finish, next_start), atom, True))
            if finish < next_start:
                per_container[cid].append((finish, next_start, atom, False))
    return per_container


def render_container_timeline(
    trace: Trace,
    num_containers: int,
    *,
    width: int = 72,
    markers: dict[str, int] | None = None,
) -> str:
    """ASCII Fig. 6: one row per container, letters = resident atoms.

    Loaded atoms print as their initial in upper case, in-flight
    rotations in lower case, emptiness as ``.``.  ``markers`` (label ->
    cycle) adds a ruler row with the T0..T5 checkpoints.
    """
    if width < 8:
        raise ValueError("timeline too narrow")
    occupancy = container_occupancy(trace, num_containers)
    horizon = max(
        (end for spans in occupancy.values() for (_s, end, _a, _l) in spans),
        default=0,
    )
    for cycle in (markers or {}).values():
        horizon = max(horizon, cycle)
    if horizon == 0:
        return "(empty timeline)"
    scale = horizon / width
    lines = []
    for cid in range(num_containers):
        row = ["."] * width
        for start, end, atom, loading in occupancy[cid]:
            lo = int(start / scale)
            hi = max(int(end / scale), lo + 1)
            letter = atom[0].lower() if loading else atom[0].upper()
            for x in range(lo, min(hi, width)):
                row[x] = letter
        lines.append(f"AC{cid} |{''.join(row)}|")
    if markers:
        ruler = [" "] * width
        legend = []
        for label, cycle in sorted(markers.items(), key=lambda kv: kv[1]):
            x = min(int(cycle / scale), width - 1)
            ruler[x] = "^"
            legend.append(f"{label}@{cycle:,}")
        lines.append("     " + "".join(ruler))
        lines.append("marks: " + "  ".join(legend))
    lines.append(
        f"scale: {scale:,.0f} cycles/column; lower case = rotation in flight"
    )
    return "\n".join(lines)
