"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; numeric cells are right-aligned, text cells
    left-aligned.
    """
    if not headers:
        raise ValueError("a table needs headers")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows), 1)
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    numeric = [
        bool(str_rows) and all(_is_numeric(r[i]) for r in str_rows)
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line([str(h) for h in headers]))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "").replace("+", "")
    return stripped.isdigit() and bool(stripped)
