"""Deterministic whole-world snapshots of a :class:`RisppRuntime`.

A snapshot captures, at one journal sequence number, every piece of
durable simulation state: the fabric's Atom Containers, the
reconfiguration port (jobs, pending queue, reservations), the fault
injector's episode/retry/backoff bookkeeping, the forecast monitor, the
run-time manager's forecasts / stats / replan memo, the full event
trace, and the deterministic metric families.  Schema-versioned like
golden traces (``schema_version`` + ``kind``), serialized as compact
canonical JSON — byte-identical for identical runs.

Restore works *in place*: the driver rebuilds the scenario exactly as a
fresh run would (library, runtime, injector, registry), then
:func:`restore_runtime` overwrites the mutable state of that world with
the snapshot's.  A configuration mismatch between the two — different
container count, clock, fault schedule parameters — raises
:class:`RecoveryError` instead of silently resuming a different
scenario.  Object identities the live code relies on (the injector's
in-flight repair job *is* an entry of ``port.jobs``) are preserved by
serializing cross-references as indices.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from pathlib import Path
from typing import Any

from ..faults.injector import FaultInjector, _Episode, _Retry
from ..faults.model import FaultEvent, FaultKind
from ..hardware.container import ContainerState
from ..hardware.reconfig import RotationJob
from ..obs.catalogue import NAMESPACE, spec_of
from ..obs.exporters import snapshot as metrics_snapshot
from ..runtime.manager import RisppRuntime, RuntimeStats, _ActiveForecast
from ..runtime.monitor import ForecastWindow, SIForecastStats
from ..sim.trace import Event, EventKind
from .journal import RecoveryError

RECOVERY_SCHEMA_VERSION = 1
RECOVERY_KIND = "rispp-recovery-snapshot"

#: Snapshot file name for one journal sequence number.
_SNAPSHOT_GLOB = "snapshot-*.json"


def snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:08d}.json"


# -- capture ------------------------------------------------------------------


def _container_state(runtime: RisppRuntime) -> list[dict[str, Any]]:
    return [
        {
            "container_id": c.container_id,
            "state": c.state.value,
            "atom": c.atom,
            "owner": c.owner,
            "ready_at": c.ready_at,
            "last_used": c.last_used,
            "rotations": c.rotations,
            "evictions": c.evictions,
            "failed": c.failed,
            "corrupted": c.corrupted,
            "quarantined": c.quarantined,
            "generation": c.generation,
        }
        for c in runtime.fabric.containers
    ]


def _port_state(runtime: RisppRuntime) -> dict[str, Any]:
    port = runtime.port
    index_of = {id(job): i for i, job in enumerate(port.jobs)}
    return {
        "busy_until": port.busy_until,
        "jobs": [
            {
                "atom": j.atom,
                "container_id": j.container_id,
                "requested_at": j.requested_at,
                "started_at": j.started_at,
                "finish_at": j.finish_at,
                "evicted": j.evicted,
                "started": j.started,
                "completed": j.completed,
                "owner": j.owner,
                "repair": j.repair,
                "aborted": j.aborted,
            }
            for j in port.jobs
        ],
        "pending": [index_of[id(j)] for j in port.pending_jobs()],
        "reserved": sorted(port._reserved),
    }


def _episode_entry(container_id: int, episode: _Episode) -> list[Any]:
    return [
        container_id,
        episode.atom,
        episode.injected_at,
        episode.detected_at,
    ]


def _injector_state(runtime: RisppRuntime) -> dict[str, Any] | None:
    injector = runtime._faults
    if injector is None:
        return None
    index_of = {id(job): i for i, job in enumerate(runtime.port.jobs)}
    return {
        "cursor": injector._cursor,
        "last_mark": injector._last_mark,
        "events": [
            [e.cycle, e.kind.value, e.container] for e in injector._events
        ],
        "corrupted": [
            _episode_entry(cid, ep) for cid, ep in injector._corrupted.items()
        ],
        "quarantined": [
            _episode_entry(cid, ep) for cid, ep in injector._quarantined.items()
        ],
        "retries": [
            [r.due, r.container, r.atom, r.owner, r.repair]
            for r in injector._retries
        ],
        "attempts": [
            [container, atom, n]
            for (container, atom), n in injector._attempts.items()
        ],
        "repair_of": [
            [cid, index_of[id(job)]]
            for cid, job in injector._repair_of.items()
        ],
        "stats": asdict(injector.stats),
    }


def _monitor_state(runtime: RisppRuntime) -> dict[str, Any]:
    monitor = runtime.monitor
    return {
        "stats": [
            [
                task,
                si,
                {
                    "expectation": s.expectation,
                    "windows": s.windows,
                    "total_predicted": s.total_predicted,
                    "total_observed": s.total_observed,
                    "hit_windows": s.hit_windows,
                },
            ]
            for (task, si), s in monitor._stats.items()
        ],
        "open": [
            [
                task,
                si,
                {
                    "opened_at": w.opened_at,
                    "predicted": w.predicted,
                    "observed": w.observed,
                },
            ]
            for (task, si), w in monitor._open.items()
        ],
        "windows_seen": monitor._windows_seen,
        "abs_error_sum": monitor._abs_error_sum,
    }


def _manager_state(runtime: RisppRuntime) -> dict[str, Any]:
    plan_key: dict[str, Any] | None = None
    if runtime._plan_key is not None:
        weights, loaded = runtime._plan_key
        plan_key = {
            "weights": [[name, weight] for name, weight in weights],
            "loaded": loaded.as_dict(),
        }
    return {
        "stats": asdict(runtime.stats),
        "task_stats": [
            [task, asdict(stats)] for task, stats in runtime.task_stats.items()
        ],
        "active": [
            [f.task, f.si_name, f.weight, f.priority]
            for f in runtime._active.values()
        ],
        "last_mode": [
            [task, si, mode]
            for (task, si), mode in runtime._last_mode.items()
        ],
        "unplaced_for": runtime._unplaced_for,
        "plan_key": plan_key,
    }


def _trace_state(runtime: RisppRuntime) -> dict[str, Any]:
    # Materializing ``e.detail`` resolves (and caches) lazy details; the
    # resolved dict is identical to the eager form, so neither the live
    # run nor the restored one observes a difference.
    return {
        "events": [
            [e.cycle, e.kind.value, e.task, e.si, dict(e.detail)]
            for e in runtime.trace.events
        ],
        "last_cycle": runtime.trace.last_cycle,
    }


def _config_of(runtime: RisppRuntime) -> dict[str, Any]:
    injector = runtime._faults
    injector_config: dict[str, Any] | None = None
    if injector is not None:
        ladder = injector.backoff_ladder
        injector_config = {
            "scrub_period": injector.scrub_period,
            "max_retries": injector.max_retries,
            "backoff_cycles": injector.backoff_cycles,
            "backoff_ladder": list(ladder) if ladder is not None else None,
        }
    energy = runtime.energy_model
    return {
        "containers": len(runtime.fabric),
        "core_mhz": runtime.port.core_mhz,
        "bytes_per_us": runtime.port.bytes_per_us,
        "static_multiplicity": runtime.fabric.static_multiplicity,
        "forecasting": runtime.forecasting,
        "optimize": runtime._optimize,
        "metrics_enabled": runtime.metrics.enabled,
        "monitor_smoothing": runtime.monitor.smoothing,
        "atom_kinds": list(runtime.fabric.space.kinds),
        "energy_model": asdict(energy) if energy is not None else None,
        "injector": injector_config,
    }


def snapshot_runtime(
    runtime: RisppRuntime, *, seq: int, cycle: int, results: list[Any]
) -> dict[str, Any]:
    """The whole world at journal sequence ``seq``, as a JSON-safe dict.

    ``results`` are the return values of journal records ``1..seq`` (SI
    latencies and query answers; ``None`` for the rest) — the resumed
    run hands them back to the re-driving scenario code verbatim.
    """
    if len(results) != seq:
        raise RecoveryError(
            f"snapshot at seq {seq} needs {seq} command results, "
            f"got {len(results)}"
        )
    return {
        "schema_version": RECOVERY_SCHEMA_VERSION,
        "kind": RECOVERY_KIND,
        "seq": seq,
        "cycle": cycle,
        "config": _config_of(runtime),
        "state": {
            "containers": _container_state(runtime),
            "port": _port_state(runtime),
            "injector": _injector_state(runtime),
            "monitor": _monitor_state(runtime),
            "manager": _manager_state(runtime),
            "trace": _trace_state(runtime),
            "metrics": (
                metrics_snapshot(runtime.metrics, deterministic_only=True)
                if runtime.metrics.enabled
                else None
            ),
        },
        "results": list(results),
    }


# -- store I/O ----------------------------------------------------------------


def write_snapshot(store: Path, snap: dict[str, Any]) -> Path:
    """Write one snapshot file (compact canonical JSON, golden style)."""
    import json

    path = store / snapshot_name(int(snap["seq"]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return path


def list_snapshots(store: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` of every snapshot in the store, oldest first."""
    out: list[tuple[int, Path]] = []
    for path in sorted(store.glob(_SNAPSHOT_GLOB)):
        stem = path.stem.split("-", 1)
        if len(stem) == 2 and stem[1].isdigit():
            out.append((int(stem[1]), path))
    return sorted(out)


def latest_snapshot(
    store: Path, *, max_seq: int | None = None
) -> tuple[int, Path] | None:
    """The newest usable snapshot (optionally capped at ``max_seq``)."""
    usable = [
        (seq, path)
        for seq, path in list_snapshots(store)
        if max_seq is None or seq <= max_seq
    ]
    return usable[-1] if usable else None


def load_snapshot(path: Path) -> dict[str, Any]:
    """Read and schema-check one snapshot file."""
    import json

    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise RecoveryError(f"cannot read snapshot {path}: {exc}") from exc
    except ValueError as exc:
        raise RecoveryError(f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise RecoveryError(f"snapshot {path} is not a JSON object")
    version = data.get("schema_version")
    if version != RECOVERY_SCHEMA_VERSION:
        raise RecoveryError(
            f"unsupported snapshot schema version {version!r} "
            f"(this build reads version {RECOVERY_SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    if kind != RECOVERY_KIND:
        raise RecoveryError(
            f"not a recovery snapshot: kind {kind!r} "
            f"(expected {RECOVERY_KIND!r})"
        )
    for key in ("seq", "cycle", "config", "state", "results"):
        if key not in data:
            raise RecoveryError(f"snapshot {path} is missing the {key!r} key")
    return data


# -- restore ------------------------------------------------------------------


def _set_fields(target: Any, values: dict[str, Any]) -> None:
    """Overwrite every dataclass field of ``target`` from ``values``."""
    for f in fields(target):
        setattr(target, f.name, values[f.name])


def _check_config(runtime: RisppRuntime, config: dict[str, Any]) -> None:
    current = _config_of(runtime)
    mismatched = [
        key
        for key in sorted(current)
        if key != "injector" and config.get(key) != current[key]
    ]
    snap_inj = config.get("injector")
    live_inj = current["injector"]
    if (snap_inj is None) != (live_inj is None):
        mismatched.append("injector")
    elif snap_inj is not None and live_inj is not None:
        mismatched.extend(
            f"injector.{key}"
            for key in sorted(live_inj)
            if snap_inj.get(key) != live_inj[key]
        )
    if mismatched:
        raise RecoveryError(
            "snapshot does not match the rebuilt scenario; mismatched "
            "configuration keys: " + ", ".join(mismatched)
        )


def _restore_containers(runtime: RisppRuntime, data: list[dict[str, Any]]) -> None:
    fabric = runtime.fabric
    if len(data) != len(fabric.containers):
        raise RecoveryError(
            f"snapshot has {len(data)} containers, fabric has "
            f"{len(fabric.containers)}"
        )
    for container, entry in zip(fabric.containers, data):
        if entry["container_id"] != container.container_id:
            raise RecoveryError("container ids out of order in snapshot")
        container.state = ContainerState(entry["state"])
        container.atom = entry["atom"]
        container.owner = entry["owner"]
        container.ready_at = entry["ready_at"]
        container.last_used = entry["last_used"]
        container.rotations = entry["rotations"]
        container.evictions = entry["evictions"]
        container.failed = entry["failed"]
        container.corrupted = entry["corrupted"]
        container.quarantined = entry["quarantined"]
        container.generation = entry["generation"]
    fabric._available_cache = None
    fabric._loaded_cache = None


def _restore_port(runtime: RisppRuntime, data: dict[str, Any]) -> list[RotationJob]:
    port = runtime.port
    jobs = [
        RotationJob(
            atom=j["atom"],
            container_id=j["container_id"],
            requested_at=j["requested_at"],
            started_at=j["started_at"],
            finish_at=j["finish_at"],
            evicted=j["evicted"],
            started=j["started"],
            completed=j["completed"],
            owner=j["owner"],
            repair=j["repair"],
            aborted=j["aborted"],
        )
        for j in data["jobs"]
    ]
    port.jobs = jobs
    port._pending = [jobs[i] for i in data["pending"]]
    port._reserved = set(data["reserved"])
    port.busy_until = data["busy_until"]
    return jobs


def _restore_injector(
    runtime: RisppRuntime, data: dict[str, Any] | None, jobs: list[RotationJob]
) -> None:
    injector = runtime._faults
    if (injector is None) != (data is None):
        raise RecoveryError(
            "snapshot and rebuilt scenario disagree on fault injection"
        )
    if injector is None or data is None:
        return
    injector._events = [
        FaultEvent(cycle=cycle, kind=FaultKind(kind), container=container)
        for cycle, kind, container in data["events"]
    ]
    injector._cursor = data["cursor"]
    injector._last_mark = data["last_mark"]
    injector._corrupted = {
        cid: _Episode(cid, atom, injected_at, detected_at)
        for cid, atom, injected_at, detected_at in data["corrupted"]
    }
    injector._quarantined = {
        cid: _Episode(cid, atom, injected_at, detected_at)
        for cid, atom, injected_at, detected_at in data["quarantined"]
    }
    injector._retries = [
        _Retry(due, container, atom, owner, repair)
        for due, container, atom, owner, repair in data["retries"]
    ]
    injector._attempts = {
        (container, atom): n for container, atom, n in data["attempts"]
    }
    # Index-based references keep the live identity invariant: the
    # injector's tracked repair job *is* the port's job object.
    injector._repair_of = {cid: jobs[i] for cid, i in data["repair_of"]}
    _set_fields(injector.stats, data["stats"])


def _restore_monitor(runtime: RisppRuntime, data: dict[str, Any]) -> None:
    monitor = runtime.monitor
    monitor._stats = {
        (task, si): SIForecastStats(
            expectation=payload["expectation"],
            windows=payload["windows"],
            total_predicted=payload["total_predicted"],
            total_observed=payload["total_observed"],
            hit_windows=payload["hit_windows"],
        )
        for task, si, payload in data["stats"]
    }
    monitor._open = {
        (task, si): ForecastWindow(
            si_name=si,
            task=task,
            opened_at=payload["opened_at"],
            predicted=payload["predicted"],
            observed=payload["observed"],
        )
        for task, si, payload in data["open"]
    }
    monitor._windows_seen = data["windows_seen"]
    monitor._abs_error_sum = data["abs_error_sum"]


def _restore_manager(runtime: RisppRuntime, data: dict[str, Any]) -> None:
    _set_fields(runtime.stats, data["stats"])
    task_stats: dict[str, RuntimeStats] = {}
    for task, payload in data["task_stats"]:
        stats = RuntimeStats()
        _set_fields(stats, payload)
        task_stats[task] = stats
    runtime.task_stats = task_stats
    runtime._active = {
        (task, si): _ActiveForecast(
            task=task, si_name=si, weight=weight, priority=priority
        )
        for task, si, weight, priority in data["active"]
    }
    runtime._last_mode = {
        (task, si): mode for task, si, mode in data["last_mode"]
    }
    runtime._unplaced_for = data["unplaced_for"]
    plan_key = data["plan_key"]
    if plan_key is None:
        runtime._plan_key = None
    else:
        weights = tuple(
            (str(name), float(weight)) for name, weight in plan_key["weights"]
        )
        loaded = runtime.fabric.space.molecule(
            {str(kind): int(count) for kind, count in plan_key["loaded"].items()}
        )
        runtime._plan_key = (weights, loaded)
    # Pure memoization caches; dropping them costs one recomputation.
    runtime._impl_cache.clear()
    runtime._impl_cache_gen = -1
    runtime._rc_cache.clear()


def _restore_trace(runtime: RisppRuntime, data: dict[str, Any]) -> None:
    trace = runtime.trace
    trace.events = [
        Event(cycle, EventKind(kind), task, si, dict(detail) if detail else None)
        for cycle, kind, task, si, detail in data["events"]
    ]
    trace._last_cycle = data["last_cycle"]


def _restore_metrics(runtime: RisppRuntime, data: dict[str, Any] | None) -> None:
    registry = runtime.metrics
    if not registry.enabled or data is None:
        return
    prefix = NAMESPACE + "_"
    for family in data["metrics"]:
        full_name = family["name"]
        if not full_name.startswith(prefix):
            raise RecoveryError(f"metric {full_name!r} outside the namespace")
        base = full_name[len(prefix):]
        try:
            spec = spec_of(base)
        except ValueError as exc:
            raise RecoveryError(str(exc)) from exc
        if spec.type == "counter":
            instrument = registry.counter(base)
        elif spec.type == "gauge":
            instrument = registry.gauge(base)
        else:
            instrument = registry.histogram(base)
        for sample in family["samples"]:
            labels = {str(k): str(v) for k, v in sample["labels"].items()}
            leaf = instrument.labels(**labels) if labels else instrument
            if spec.type == "histogram":
                buckets = sample["buckets"]
                if len(buckets) != len(leaf.bounds) + 1:
                    raise RecoveryError(
                        f"metric {full_name!r} bucket layout changed"
                    )
                counts: list[int] = []
                previous = 0
                for _bound, cumulative in buckets:
                    counts.append(int(cumulative) - previous)
                    previous = int(cumulative)
                leaf.counts = counts
                leaf.sum = float(sample["sum"])
                leaf.count = int(sample["count"])
            elif leaf.callback is None:
                # Callback-driven samples recompute from restored state.
                leaf.value = float(sample["value"])


def restore_runtime(runtime: RisppRuntime, snap: dict[str, Any]) -> None:
    """Overwrite ``runtime``'s mutable state with the snapshot's.

    The runtime must have been rebuilt exactly as the original driver
    built it (same library, container count, injector parameters,
    metrics registry on/off); :class:`RecoveryError` otherwise.
    """
    try:
        _check_config(runtime, snap["config"])
        state = snap["state"]
        _restore_containers(runtime, state["containers"])
        jobs = _restore_port(runtime, state["port"])
        _restore_injector(runtime, state["injector"], jobs)
        _restore_monitor(runtime, state["monitor"])
        _restore_manager(runtime, state["manager"])
        _restore_trace(runtime, state["trace"])
        _restore_metrics(runtime, state["metrics"])
    except RecoveryError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise RecoveryError(f"malformed recovery snapshot: {exc!r}") from exc
