"""Write-ahead event journal: the durable half of crash consistency.

Every command a driver issues against a :class:`RecoverableRuntime`
(forecasts, SI executions, clock advances, container failures, journaled
state queries) is appended to ``journal.jsonl`` — one JSON record per
line, CRC-protected — and *flushed before it is applied*.  Killing the
process at any point therefore leaves one of two states on disk:

* the record is absent — the command never happened; the resumed run
  re-issues and re-journals it;
* the record is present (possibly unapplied) — replaying it onto the
  restored snapshot reproduces exactly the state the command would have
  produced, because every durable effect of a command lives in the
  snapshot state and commands are deterministic.

A torn write can only damage the *last* line (appends are sequential),
so the reader discards a corrupt or partial final record — it was never
acknowledged — while corruption anywhere earlier, a CRC mismatch on an
interior line, or a sequence-number gap is a real integrity failure and
raises :class:`RecoveryError`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

#: File name of the journal inside a recovery store directory.
JOURNAL_NAME = "journal.jsonl"

#: The replayable command surface (see ``docs/recovery.md``).
JOURNAL_OPS = (
    "advance",
    "execute_si",
    "fail_container",
    "forecast",
    "forecast_end",
    "query",
)


class RecoveryError(Exception):
    """A snapshot or journal cannot be used to resume a run.

    Raised for unknown schema versions, interior journal corruption,
    sequence gaps, snapshot/runtime configuration mismatches and resumed
    runs that diverge from the journaled command stream.  Deliberately
    *not* a ``ValueError`` subclass: drivers that guard artifact
    validation with ``except ValueError`` must not silently swallow a
    broken recovery store.
    """


@dataclass(frozen=True)
class JournalRecord:
    """One journaled command: ``op(args)`` issued at ``cycle``."""

    seq: int
    cycle: int
    op: str
    args: dict[str, Any]

    def payload(self) -> dict[str, Any]:
        """The CRC-covered portion of the serialized record."""
        return {
            "seq": self.seq,
            "cycle": self.cycle,
            "op": self.op,
            "args": dict(self.args),
        }


@dataclass(frozen=True)
class JournalReadResult:
    """Outcome of reading a journal file."""

    records: list[JournalRecord]
    #: A corrupt or partial final line was discarded (torn tail write).
    discarded_tail: bool
    #: Byte length of the valid prefix; appenders truncate to this first.
    valid_bytes: int


def _crc(payload: dict[str, Any]) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def encode_record(record: JournalRecord) -> str:
    """One journal line (no trailing newline)."""
    body = record.payload()
    body["crc"] = _crc(record.payload())
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> JournalRecord:
    """Parse and CRC-check one journal line; ``ValueError`` when invalid."""
    data = json.loads(line)
    if not isinstance(data, dict):
        raise ValueError("journal record is not an object")
    try:
        crc = data["crc"]
        record = JournalRecord(
            seq=int(data["seq"]),
            cycle=int(data["cycle"]),
            op=str(data["op"]),
            args=dict(data["args"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed journal record: {exc}") from exc
    if record.op not in JOURNAL_OPS:
        raise ValueError(f"unknown journal op {record.op!r}")
    if crc != _crc(record.payload()):
        raise ValueError(f"journal CRC mismatch on seq {record.seq}")
    return record


def read_journal(path: Path) -> JournalReadResult:
    """Load the journal; tolerate a torn tail, reject interior damage."""
    if not path.is_file():
        raise RecoveryError(f"journal not found: {path}")
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, leaving one empty tail
    # element; anything else after the last newline is a partial write.
    partial = lines.pop() if lines and lines[-1] != b"" else b""
    if lines and lines[-1] == b"":
        lines.pop()
    records: list[JournalRecord] = []
    discarded_tail = bool(partial)
    valid_bytes = 0
    for index, line in enumerate(lines):
        try:
            record = decode_line(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if index == len(lines) - 1 and not partial:
                # The final complete line is torn — written but never
                # acknowledged.  Discard it; the resumed run re-issues.
                discarded_tail = True
                break
            raise RecoveryError(
                f"journal corrupted at line {index + 1}: {exc}"
            ) from exc
        expected = len(records) + 1
        if record.seq != expected:
            raise RecoveryError(
                f"journal sequence gap: expected seq {expected}, "
                f"found {record.seq} at line {index + 1}"
            )
        records.append(record)
        valid_bytes += len(line) + 1
    return JournalReadResult(
        records=records, discarded_tail=discarded_tail, valid_bytes=valid_bytes
    )


class JournalWriter:
    """Appends CRC'd records, flushing each before the caller applies it."""

    def __init__(self, path: Path, *, start_seq: int = 0, truncate_to: int | None = None):
        self.path = path
        self._seq = start_seq
        if truncate_to is not None:
            # Cut a torn tail off before appending: a partial final line
            # would otherwise fuse with the next record.
            with open(path, "r+b") as raw:
                raw.truncate(truncate_to)
        self._fh: IO[str] = open(path, "a", encoding="utf-8")

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    def append(self, cycle: int, op: str, args: dict[str, Any]) -> JournalRecord:
        """Durably record one command *before* it is applied."""
        record = JournalRecord(seq=self._seq + 1, cycle=cycle, op=op, args=args)
        self._fh.write(encode_record(record) + "\n")
        self._fh.flush()
        self._seq = record.seq
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass
