"""Crash-consistent checkpoint/restore for RISPP runs.

The package makes every deterministic driver resumable: a write-ahead
journal (:mod:`.journal`) records each runtime command before it is
applied, periodic whole-world snapshots (:mod:`.snapshot`) bound the
replay work, and :class:`.runtime.RecoverableRuntime` ties both to a
live :class:`~repro.runtime.manager.RisppRuntime` so a run killed at
*any* command boundary resumes to a byte-identical outcome.  Rule
TRC016 (:mod:`.verify`) audits the stitching across resume boundaries.
"""

from .journal import (
    JOURNAL_NAME,
    JOURNAL_OPS,
    JournalReadResult,
    JournalRecord,
    JournalWriter,
    RecoveryError,
    read_journal,
)
from .runtime import RecoverableRuntime, RecoveryPlan, SimulatedCrash, query
from .snapshot import (
    RECOVERY_KIND,
    RECOVERY_SCHEMA_VERSION,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    restore_runtime,
    snapshot_runtime,
    write_snapshot,
)
from .verify import verify_resume

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_OPS",
    "JournalReadResult",
    "JournalRecord",
    "JournalWriter",
    "RECOVERY_KIND",
    "RECOVERY_SCHEMA_VERSION",
    "RecoverableRuntime",
    "RecoveryError",
    "RecoveryPlan",
    "SimulatedCrash",
    "latest_snapshot",
    "list_snapshots",
    "load_snapshot",
    "query",
    "read_journal",
    "restore_runtime",
    "snapshot_runtime",
    "verify_resume",
    "write_snapshot",
]
