"""TRC016: resume-boundary coherence of a recovery store.

:func:`verify_resume` checks a finished (possibly resumed) run against
the recovery store it checkpointed into.  Every snapshot in the store
defines a *resume boundary*; the rule asserts the final world is
coherent with each of them:

* the snapshot's recorded trace is an exact prefix of the final trace —
  no event is duplicated or lost across the boundary, and the suffix
  starts at or after the boundary cycle;
* rotation jobs pending at the snapshot stitch exactly: each re-appears
  unchanged at the same port index, and a completed one completes in the
  suffix exactly once, at its recorded finish cycle;
* quarantine episodes open at the snapshot stitch exactly: no duplicate
  ``CONTAINER_QUARANTINED`` without an intervening repair or permanent
  failure, and a repair in the suffix closes the episode recorded at
  the boundary (matching ``injected_at``);
* the journal itself is readable (interior corruption is a finding, a
  torn tail is not — it was never acknowledged).

Clean on any checkpointing run, interrupted or not: an uninterrupted
run satisfies the prefix property trivially, and a correctly resumed
run is byte-identical to it.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..sim.trace import EventKind
from .journal import JOURNAL_NAME, RecoveryError, read_journal
from .snapshot import list_snapshots, load_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.diagnostics import Diagnostic, DiagnosticReport


def _event_tuple(event: Any) -> tuple[int, str, str, str, dict[str, Any]]:
    return (event.cycle, event.kind.value, event.task, event.si, dict(event.detail))


def _stored_tuple(entry: list[Any]) -> tuple[int, str, str, str, dict[str, Any]]:
    cycle, kind, task, si, detail = entry
    return (cycle, kind, task, si, dict(detail))


def _check_trace_prefix(
    findings: list["Diagnostic"],
    runtime: Any,
    snap: dict[str, Any],
    boundary: str,
    subject: str,
) -> int | None:
    """Prefix equality; returns the suffix start index when coherent."""
    from ..analysis.rules import diag

    stored = snap["state"]["trace"]["events"]
    final = runtime.trace.events
    if len(stored) > len(final):
        findings.append(
            diag(
                "TRC016",
                f"final trace has {len(final)} events but the snapshot at "
                f"{boundary} recorded {len(stored)} — events were lost "
                "across the resume boundary",
                subject=subject,
                location=boundary,
            )
        )
        return None
    for index, entry in enumerate(stored):
        if _stored_tuple(entry) != _event_tuple(final[index]):
            findings.append(
                diag(
                    "TRC016",
                    f"trace event {index} differs from the snapshot at "
                    f"{boundary}: recorded {_stored_tuple(entry)!r}, final "
                    f"{_event_tuple(final[index])!r} — the resume boundary "
                    "duplicated or rewrote events",
                    subject=subject,
                    location=boundary,
                )
            )
            return None
    last_cycle = snap["state"]["trace"]["last_cycle"]
    if len(final) > len(stored) and final[len(stored)].cycle < last_cycle:
        findings.append(
            diag(
                "TRC016",
                f"first post-boundary event at cycle "
                f"{final[len(stored)].cycle} predates the boundary cycle "
                f"{last_cycle} of {boundary}",
                subject=subject,
                location=boundary,
            )
        )
        return None
    return len(stored)


def _check_port_stitch(
    findings: list["Diagnostic"],
    runtime: Any,
    snap: dict[str, Any],
    suffix: list[Any],
    boundary: str,
    subject: str,
) -> None:
    from ..analysis.rules import diag

    port_state = snap["state"]["port"]
    stored_jobs = port_state["jobs"]
    final_jobs = runtime.port.jobs
    pending_now = {id(j) for j in runtime.port.pending_jobs()}
    for index in port_state["pending"]:
        stored = stored_jobs[index]
        where = f"{boundary} port job {index}"
        if index >= len(final_jobs):
            findings.append(
                diag(
                    "TRC016",
                    f"rotation job {index} pending at the boundary is "
                    "missing from the final port history",
                    subject=subject,
                    location=where,
                )
            )
            continue
        job = final_jobs[index]
        # finish_at is deliberately not part of the identity: dropping a
        # dead container's job resequences the queue behind it, legally
        # moving the survivors' start/finish cycles.
        identity = (job.atom, job.container_id, job.requested_at)
        recorded = (
            stored["atom"],
            stored["container_id"],
            stored["requested_at"],
        )
        if identity != recorded:
            findings.append(
                diag(
                    "TRC016",
                    f"rotation job {index} changed across the boundary: "
                    f"snapshot recorded {recorded!r}, final port holds "
                    f"{identity!r}",
                    subject=subject,
                    location=where,
                )
            )
            continue
        if job.completed:
            completions = [
                e
                for e in suffix
                if e.kind is EventKind.ROTATION_COMPLETED
                and e.detail.get("container") == job.container_id
                and e.cycle == job.finish_at
            ]
            if len(completions) != 1:
                findings.append(
                    diag(
                        "TRC016",
                        f"rotation job {index} (container "
                        f"{job.container_id}) pending at the boundary "
                        f"completed {len(completions)} times in the suffix "
                        f"instead of exactly once at cycle {job.finish_at}",
                        subject=subject,
                        location=where,
                    )
                )
        elif (
            not job.aborted
            and id(job) not in pending_now
            # A job whose target container died is silently dropped from
            # the queue (ReconfigurationPort._drop_failed) — failure is
            # permanent, so the final fabric still shows it.
            and not runtime.fabric.container(job.container_id).failed
        ):
            findings.append(
                diag(
                    "TRC016",
                    f"rotation job {index} pending at the boundary is "
                    "neither completed, aborted, dropped with its failed "
                    "container, nor still pending",
                    subject=subject,
                    location=where,
                )
            )


def _check_quarantine_stitch(
    findings: list["Diagnostic"],
    snap: dict[str, Any],
    suffix: list[Any],
    boundary: str,
    subject: str,
) -> None:
    from ..analysis.rules import diag

    for container_id, _atom, injected_at, _detected in snap["state"]["injector"][
        "quarantined"
    ]:
        where = f"{boundary} container {container_id}"
        closed = False
        for event in suffix:
            if event.detail.get("container") != container_id:
                continue
            if event.kind is EventKind.CONTAINER_QUARANTINED and not closed:
                findings.append(
                    diag(
                        "TRC016",
                        f"container {container_id} re-quarantined in the "
                        "suffix while the boundary episode (injected at "
                        f"cycle {injected_at}) was still open — duplicated "
                        "episode across the resume boundary",
                        subject=subject,
                        location=where,
                    )
                )
                break
            if event.kind is EventKind.CONTAINER_REPAIRED:
                if not closed and event.detail.get("injected_at") != injected_at:
                    findings.append(
                        diag(
                            "TRC016",
                            f"repair of container {container_id} closes an "
                            "episode injected at cycle "
                            f"{event.detail.get('injected_at')}, but the "
                            "boundary episode was injected at cycle "
                            f"{injected_at} — quarantine episodes do not "
                            "stitch across the resume boundary",
                            subject=subject,
                            location=where,
                        )
                    )
                    break
                closed = True
            elif event.kind is EventKind.CONTAINER_FAILED:
                closed = True


def verify_resume(
    runtime: Any, store: Path, *, subject: str = "recovery"
) -> "DiagnosticReport":
    """Judge a finished run against its recovery store (rule TRC016).

    ``runtime`` is the runtime that finished the run (a
    :class:`~repro.recovery.runtime.RecoverableRuntime` or the plain
    runtime it wraps); ``store`` is the checkpoint directory.
    """
    from ..analysis.diagnostics import DiagnosticReport
    from ..analysis.rules import diag

    findings: list[Diagnostic] = []
    store = Path(store)
    try:
        read_journal(store / JOURNAL_NAME)
    except RecoveryError as exc:
        findings.append(
            diag(
                "TRC016",
                f"recovery journal unusable: {exc}",
                subject=subject,
                location=str(store / JOURNAL_NAME),
            )
        )
    for _seq, path in list_snapshots(store):
        boundary = path.name
        try:
            snap = load_snapshot(path)
        except RecoveryError as exc:
            findings.append(
                diag(
                    "TRC016",
                    f"recovery snapshot unusable: {exc}",
                    subject=subject,
                    location=str(path),
                )
            )
            continue
        suffix_start = _check_trace_prefix(
            findings, runtime, snap, boundary, subject
        )
        if suffix_start is None:
            continue
        suffix = runtime.trace.events[suffix_start:]
        _check_port_stitch(findings, runtime, snap, suffix, boundary, subject)
        if snap["state"]["injector"] is not None:
            _check_quarantine_stitch(findings, snap, suffix, boundary, subject)
    return DiagnosticReport(findings)
