"""The recoverable runtime: journaled commands + periodic snapshots.

:class:`RecoverableRuntime` wraps a :class:`~repro.runtime.manager.RisppRuntime`
and intercepts its command surface (``forecast`` / ``forecast_end`` /
``execute_si`` / ``advance`` / ``fail_container`` plus journaled state
*queries*).  Each command is appended to the write-ahead journal and
flushed before it is applied; every ``checkpoint_every`` commands the
whole world is snapshotted.  Killing the process at any command
boundary — :class:`SimulatedCrash` simulates exactly that, deliberately
*before* the journal append so the interrupted command is re-issued on
resume — loses nothing.

Resume has three phases.  First the newest usable snapshot is restored
onto a freshly rebuilt scenario.  Second, journal records past the
snapshot are *replayed*: re-applied live, which recomputes their results
deterministically.  Third, *handoff*: the driver re-runs the scenario
from the top, and the wrapper verifies each re-issued command against
the corresponding journal record (op, cycle and args must match — a
divergent driver raises :exc:`RecoveryError`), answering from the
recorded results without touching the runtime.  When the journal is
exhausted the wrapper switches to live mode and the run continues
exactly where the crash cut it off.

State queries must flow through :func:`query` rather than direct
attribute reads: during handoff the underlying runtime already holds the
*post-replay* state, while the driver is still logically at an earlier
point — a direct read would see the future.  Journaling the query makes
it return the original run's answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from .journal import (
    JOURNAL_NAME,
    JournalRecord,
    JournalWriter,
    RecoveryError,
    read_journal,
)
from .snapshot import (
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    restore_runtime,
    snapshot_runtime,
    write_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.manager import RisppRuntime

#: Journaled state queries: everything a driver may need to read back
#: from the runtime while steering a scenario.
_QUERIES: dict[str, Callable[["RisppRuntime"], Any]] = {
    "last_cycle": lambda rt: rt.trace.last_cycle,
    "port_idle": lambda rt: rt.port.is_idle(),
    "open_episodes": lambda rt: (
        rt._faults.open_episodes() if rt._faults is not None else 0
    ),
}


class SimulatedCrash(RuntimeError):
    """Seeded crash injection fired (``--crash-at``): the process "died".

    Raised *before* the triggering command reaches the journal, exactly
    like a kill between two commands; the recovery store on disk is a
    valid resume point.
    """

    def __init__(self, *, cycle: int, seq: int, store: Path):
        self.cycle = cycle
        self.seq = seq
        self.store = store
        super().__init__(
            f"simulated crash at cycle {cycle} (journal seq {seq}); "
            f"resume from {store}"
        )


def query(runtime: Any, name: str) -> Any:
    """Read runtime state through the recovery layer when present.

    Drivers must use this for any state read that steers the scenario
    (loop bounds, quiescence checks): on a plain runtime it is a direct
    read, on a :class:`RecoverableRuntime` it is journaled so resumed
    runs answer from the journal instead of the post-replay state.
    """
    if isinstance(runtime, RecoverableRuntime):
        return runtime.query(name)
    return _QUERIES[name](runtime)


@dataclass(frozen=True)
class RecoveryPlan:
    """How a driver should attach recovery to the runtime it builds.

    Passed through ``run_chaos_suite(recovery=...)`` and the bench
    drivers' ``wrap=`` hook; :meth:`wrap` is the hook's callable.
    """

    store: Path
    checkpoint_every: int = 64
    crash_at: int | None = None
    resume: bool = False

    def wrap(self, runtime: "RisppRuntime") -> "RecoverableRuntime":
        return RecoverableRuntime(
            runtime,
            self.store,
            checkpoint_every=self.checkpoint_every,
            crash_at=self.crash_at,
            resume=self.resume,
        )


class RecoverableRuntime:
    """Journal + checkpoint wrapper around one :class:`RisppRuntime`.

    Reads delegate to the wrapped runtime; the command surface is
    intercepted (see the module docstring for the crash/resume
    protocol).  The wrapped runtime must be freshly built by the same
    deterministic driver in both the original and the resumed process.
    """

    def __init__(
        self,
        runtime: "RisppRuntime",
        store: Path,
        *,
        checkpoint_every: int = 64,
        crash_at: int | None = None,
        resume: bool = False,
    ):
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._rt = runtime
        self._store = Path(store)
        self._checkpoint_every = checkpoint_every
        self._crash_at = crash_at
        self._results: list[Any] = []
        self._handoff: list[JournalRecord] = []
        self._handoff_idx = 0
        self._last_cycle = 0
        self.snapshots_taken = 0
        self.replayed_records = 0
        self.resumed = resume
        metrics = runtime.metrics
        self._m_snap_bytes = metrics.histogram("recovery_snapshot_bytes")
        self._m_snap_time = metrics.histogram(
            "recovery_snapshot_duration_seconds"
        )
        self._m_journal = metrics.counter("recovery_journal_records_total")
        self._m_replayed = metrics.counter("recovery_journal_replay_total")
        self._m_resumes = metrics.counter("recovery_resumes_total")
        journal_path = self._store / JOURNAL_NAME
        if resume:
            read = read_journal(journal_path)
            records = read.records
            base_seq = 0
            latest = latest_snapshot(self._store, max_seq=len(records))
            if latest is not None:
                _seq, path = latest
                snap = load_snapshot(path)
                restore_runtime(runtime, snap)
                self._results = list(snap["results"])
                base_seq = int(snap["seq"])
            for record in records[base_seq:]:
                self._results.append(self._apply(record))
                self.replayed_records += 1
            if self.replayed_records:
                self._m_replayed.inc(self.replayed_records)
            self._m_resumes.inc()
            # Handoff re-tracks driver-visible cycles from the top, so
            # the very first journaled query matches its original cycle.
            self._last_cycle = 0
            self._handoff = records
            self._journal = JournalWriter(
                journal_path,
                start_seq=len(records),
                truncate_to=read.valid_bytes if read.discarded_tail else None,
            )
        else:
            self._store.mkdir(parents=True, exist_ok=True)
            if journal_path.exists():
                journal_path.unlink()
            for _seq, path in list_snapshots(self._store):
                path.unlink()
            self._journal = JournalWriter(journal_path)

    # -- delegation -------------------------------------------------------

    @property
    def runtime(self) -> "RisppRuntime":
        """The wrapped runtime (state reads for reporting/verification)."""
        return self._rt

    @property
    def store(self) -> Path:
        return self._store

    @property
    def in_handoff(self) -> bool:
        """Still re-verifying the driver against the journal?"""
        return self._handoff_idx < len(self._handoff)

    @property
    def journal_records(self) -> int:
        """Total journaled commands (replayed + handed off + live)."""
        return self._journal.next_seq - 1

    def __getattr__(self, name: str) -> Any:
        return getattr(self.__dict__["_rt"], name)

    # -- command surface --------------------------------------------------

    def forecast(
        self,
        si_name: str,
        now: int,
        *,
        task: str = "main",
        expected: float | None = None,
        priority: float = 1.0,
    ) -> None:
        self._command(
            "forecast",
            now,
            {
                "si": si_name,
                "task": task,
                "expected": expected,
                "priority": priority,
            },
        )

    def forecast_end(
        self, si_name: str, now: int, *, task: str = "main"
    ) -> None:
        self._command("forecast_end", now, {"si": si_name, "task": task})

    def execute_si(self, si_name: str, now: int, *, task: str = "main") -> int:
        latency = self._command(
            "execute_si", now, {"si": si_name, "task": task}
        )
        return int(latency)

    def advance(self, now: int) -> None:
        self._command("advance", now, {})

    def fail_container(self, container_id: int, now: int) -> None:
        self._command("fail_container", now, {"container": container_id})

    def query(self, name: str) -> Any:
        if name not in _QUERIES:
            raise ValueError(f"unknown runtime query {name!r}")
        return self._command("query", self._last_cycle, {"name": name})

    def close(self) -> None:
        self._journal.close()

    # -- protocol ---------------------------------------------------------

    def _command(self, op: str, cycle: int, args: dict[str, Any]) -> Any:
        if self._handoff_idx < len(self._handoff):
            record = self._handoff[self._handoff_idx]
            issued = JournalRecord(seq=record.seq, cycle=cycle, op=op, args=args)
            if record.payload() != issued.payload():
                raise RecoveryError(
                    f"resumed run diverged from the journal at seq "
                    f"{record.seq}: journaled {record.op} at cycle "
                    f"{record.cycle} with {record.args}, the driver issued "
                    f"{op} at cycle {cycle} with {args}"
                )
            self._handoff_idx += 1
            self._last_cycle = cycle
            return self._results[record.seq - 1]
        if self._crash_at is not None and cycle >= self._crash_at:
            raise SimulatedCrash(
                cycle=cycle, seq=self._journal.next_seq, store=self._store
            )
        record = self._journal.append(cycle, op, args)
        self._m_journal.inc()
        result = self._apply(record)
        self._results.append(result)
        self._last_cycle = cycle
        if record.seq % self._checkpoint_every == 0:
            self._checkpoint(record.seq)
        return result

    def _apply(self, record: JournalRecord) -> Any:
        rt = self._rt
        args = record.args
        cycle = record.cycle
        if record.op == "forecast":
            rt.forecast(
                args["si"],
                cycle,
                task=args["task"],
                expected=args["expected"],
                priority=args["priority"],
            )
            return None
        if record.op == "forecast_end":
            rt.forecast_end(args["si"], cycle, task=args["task"])
            return None
        if record.op == "execute_si":
            return rt.execute_si(args["si"], cycle, task=args["task"])
        if record.op == "advance":
            rt.advance(cycle)
            return None
        if record.op == "fail_container":
            rt.fail_container(args["container"], cycle)
            return None
        if record.op == "query":
            return _QUERIES[args["name"]](rt)
        raise RecoveryError(f"unknown journal op {record.op!r}")

    def _checkpoint(self, seq: int) -> None:
        with self._m_snap_time.time():
            snap = snapshot_runtime(
                self._rt, seq=seq, cycle=self._last_cycle, results=self._results
            )
            path = write_snapshot(self._store, snap)
        self._m_snap_bytes.observe(path.stat().st_size)
        self.snapshots_taken += 1
