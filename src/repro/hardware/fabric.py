"""The reconfigurable fabric: a bank of Atom Containers plus static atoms.

:class:`Fabric` aggregates the Atom Containers and answers the question
the run-time system asks constantly: *which Atoms are usable right now?*
(as a :class:`~repro.core.molecule.Molecule`, so SI implementations can
be matched with a single lattice comparison).  Static atoms — helpers
hard-wired next to the core data path (``Load``/``Add``/``Store`` in the
case study) — are always available in effectively unlimited multiplicity,
which we model with a configurable count.

The derived molecule views (:meth:`available_atoms`,
:meth:`loaded_reconfigurable`, :meth:`in_flight`) are memoized against a
**state generation** — the sum of the per-container mutation counters.
Between rotations the fabric is immutable, yet the run-time manager asks
"what is loaded?" on *every* SI execution; the generation check turns
those queries into a dict lookup instead of a molecule construction.
Pass ``cache=False`` for the always-recompute baseline (the bench
harness uses it to measure the cache's effect and to prove trace
equivalence).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.atom import AtomCatalogue
from ..core.molecule import Molecule
from .container import AtomContainer, ContainerState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import MetricRegistry


class Fabric:
    """Atom Containers + static atoms of one RISPP platform instance."""

    def __init__(
        self,
        catalogue: AtomCatalogue,
        num_containers: int,
        *,
        static_multiplicity: int = 16,
        cache: bool = True,
        metrics: "MetricRegistry | None" = None,
    ):
        if num_containers < 0:
            raise ValueError("container count cannot be negative")
        if static_multiplicity < 1:
            raise ValueError("static atoms need multiplicity of at least 1")
        self.catalogue = catalogue
        self.space = catalogue.space
        self.static_multiplicity = static_multiplicity
        self.containers = [AtomContainer(i) for i in range(num_containers)]
        # The static fabric offers its helper atoms at full multiplicity
        # and a baseline of some reconfigurable kinds (e.g. one built-in
        # Load lane); containers add instances on top.
        self._static = {
            kind.name: static_multiplicity for kind in catalogue.static_kinds()
        }
        for name, baseline in catalogue.baseline_counts().items():
            if baseline:
                self._static[name] = baseline
        self._reconfigurable = set(catalogue.reconfigurable_names())
        self.cache_enabled = cache
        #: generation -> memoized view; one entry each, replaced on miss.
        self._available_cache: tuple[int, Molecule] | None = None
        self._loaded_cache: tuple[int, Molecule] | None = None
        self._bind_metrics(metrics)

    def _bind_metrics(self, metrics: "MetricRegistry | None") -> None:
        """Register the fabric's telemetry (callback gauges + counters).

        Occupancy and churn are *sampled* at collection time instead of
        updated per mutation — the state already lives in the container
        fields, so the fabric's hot paths carry zero telemetry cost.
        """
        from ..obs import DISABLED

        obs = metrics if metrics is not None else DISABLED
        self._m_failures = obs.counter("container_failures_total")
        if not obs.enabled:
            return
        states = obs.gauge("containers_state")
        for state in ("loaded", "loading", "empty", "failed", "quarantined"):
            states.labels(state=state).set_callback(
                lambda s=state: self._count_state(s)
            )
        obs.gauge("fabric_utilisation_ratio").set_callback(self.utilisation)
        obs.counter("container_churn_total").set_callback(
            lambda: float(sum(c.rotations + c.evictions for c in self.containers))
        )

    def _count_state(self, state: str) -> float:
        """Container census for the ``containers_state`` gauge."""
        if state == "failed":
            return float(sum(1 for c in self.containers if c.failed))
        if state == "quarantined":
            return float(sum(1 for c in self.containers if c.quarantined))
        in_service = [
            c for c in self.containers if not c.failed and not c.quarantined
        ]
        wanted = ContainerState(state)
        return float(sum(1 for c in in_service if c.state is wanted))

    # -- capacity ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.containers)

    def container(self, container_id: int) -> AtomContainer:
        return self.containers[container_id]

    # -- atom visibility ------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotone counter of availability-changing mutations."""
        return sum(c.generation for c in self.containers)

    def available_atoms(self) -> Molecule:
        """Usable Atoms right now: loaded containers + static atoms."""
        if self.cache_enabled:
            gen = self.generation
            cached = self._available_cache
            if cached is not None and cached[0] == gen:
                return cached[1]
            molecule = self._compute_available()
            self._available_cache = (gen, molecule)
            return molecule
        return self._compute_available()

    def _compute_available(self) -> Molecule:
        counts = dict(self._static)
        for c in self.containers:
            if c.is_available() and c.atom is not None:
                counts[c.atom] = counts.get(c.atom, 0) + 1
        return self.space.molecule(counts)

    def loaded_reconfigurable(self) -> Molecule:
        """Only the Atoms sitting in (loaded) containers."""
        if self.cache_enabled:
            gen = self.generation
            cached = self._loaded_cache
            if cached is not None and cached[0] == gen:
                return cached[1]
            molecule = self._compute_loaded()
            self._loaded_cache = (gen, molecule)
            return molecule
        return self._compute_loaded()

    def _compute_loaded(self) -> Molecule:
        counts: dict[str, int] = {}
        for c in self.containers:
            if c.is_available() and c.atom is not None:
                counts[c.atom] = counts.get(c.atom, 0) + 1
        return self.space.molecule(counts)

    def in_flight(self) -> Molecule:
        """Atoms currently being rotated in (not yet usable)."""
        counts: dict[str, int] = {}
        for c in self.containers:
            if c.is_busy() and c.atom is not None:
                counts[c.atom] = counts.get(c.atom, 0) + 1
        return self.space.molecule(counts)

    def eventual_atoms(self) -> Molecule:
        """Atoms available once all in-flight rotations finish."""
        return self.available_atoms() + self.in_flight()

    # -- container queries ------------------------------------------------------

    def empty_containers(self) -> list[AtomContainer]:
        return [
            c
            for c in self.containers
            if c.state is ContainerState.EMPTY
            and not c.failed
            and not c.quarantined
        ]

    def healthy_containers(self) -> list[AtomContainer]:
        """Containers still in service."""
        return [c for c in self.containers if not c.failed]

    def fail_container(self, container_id: int) -> str | None:
        """Take a container out of service (fabric defect injection).

        Returns the Atom that was lost, if any.  Out-of-range ids raise
        ``ValueError`` (negative indices would silently wrap around);
        failing an already-failed container is an idempotent no-op.
        """
        if not 0 <= container_id < len(self.containers):
            raise ValueError(
                f"container id {container_id} out of range "
                f"(fabric has {len(self.containers)} containers)"
            )
        container = self.containers[container_id]
        if not container.failed:
            self._m_failures.inc()
        return container.mark_failed()

    def loaded_containers(self) -> list[AtomContainer]:
        return [c for c in self.containers if c.is_available()]

    def busy_containers(self) -> list[AtomContainer]:
        return [c for c in self.containers if c.is_busy()]

    def containers_holding(self, atom: str) -> list[AtomContainer]:
        return [
            c for c in self.containers if c.is_available() and c.atom == atom
        ]

    def containers_owned_by(self, owner: str) -> list[AtomContainer]:
        return [c for c in self.containers if c.owner == owner]

    # -- validation ----------------------------------------------------------------

    def check_rotatable(self, atom: str) -> None:
        """Reject rotations of unknown or static atom kinds."""
        if atom not in self.space:
            raise ValueError(f"unknown atom kind {atom!r}")
        if atom not in self._reconfigurable:
            raise ValueError(f"atom kind {atom!r} is static and never rotates")

    def touch_atoms(self, molecule: Molecule, now: int) -> None:
        """Mark containers backing ``molecule``'s reconfigurable atoms as used.

        One pass over the containers (id order, matching the original
        per-kind ``containers_holding`` walk) instead of one scan per
        atom kind — this sits on the SI-execution hot path.
        """
        needed: dict[str, int] = {}
        for kind in molecule.kinds_used():
            if kind in self._reconfigurable:
                needed[kind] = molecule.count(kind)
        if not needed:
            return
        for c in self.containers:
            if not c.is_available():
                continue
            remaining = needed.get(c.atom or "", 0)
            if remaining > 0:
                c.last_used = now
                needed[c.atom or ""] = remaining - 1

    def utilisation(self) -> float:
        """Fraction of containers holding or loading an Atom."""
        if not self.containers:
            return 0.0
        active = sum(
            1 for c in self.containers if c.state is not ContainerState.EMPTY
        )
        return active / len(self.containers)

    def describe(self) -> list[str]:
        """One human-readable line per container (Fig. 6-style timeline rows)."""
        lines = []
        for c in self.containers:
            state = c.state.value
            atom = c.atom or "-"
            owner = c.owner or "-"
            lines.append(
                f"AC{c.container_id}: {atom:<12} [{state:<7}] owner={owner}"
            )
        return lines
