"""Gate-equivalent area model (paper §2, Fig. 1).

An extensible processor fixes dedicated hardware for *every* hot spot at
design time: its SI area is the *sum* of all per-hot-spot gate
equivalents, even though at any instant only one hot spot is active.
RISPP instead provisions ``alpha * GE_max`` — the area of the largest hot
spot scaled by the rotation-overhead trade-off factor ``alpha`` — and
rotates the per-hot-spot Atoms through it.

The paper's H.264 example: Motion Compensation (MC) needs the biggest
area (``GE_max``) but runs only 17% of the time, while Motion Estimation
(ME) dominates run time with the least hardware; the GE saving is
``(GE_total - alpha * GE_max) * 100 / GE_total`` percent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhaseProfile:
    """One application phase (hot-spot group) with its share and area.

    ``time_pct`` is the phase's share of total processing time (percent);
    ``gate_equivalents`` is the area of the SI hardware dedicated to it in
    an extensible processor.
    """

    name: str
    time_pct: float
    gate_equivalents: int

    def __post_init__(self) -> None:
        if not 0 <= self.time_pct <= 100:
            raise ValueError("time percentage must be within [0, 100]")
        if self.gate_equivalents <= 0:
            raise ValueError("gate equivalents must be positive")


#: Representative H.264 encoder phase profile used for Fig. 1.  The paper
#: plots the chart without numeric GE labels; these values encode its
#: stated facts — MC needs the biggest area (GE_max) yet only 17% of the
#: time, ME dominates time with the least hardware — with magnitudes
#: typical of published H.264 SI datapaths.
H264_PHASES: tuple[PhaseProfile, ...] = (
    PhaseProfile("ME", time_pct=55.0, gate_equivalents=18_000),
    PhaseProfile("MC", time_pct=17.0, gate_equivalents=42_000),
    PhaseProfile("TQ", time_pct=16.0, gate_equivalents=28_000),
    PhaseProfile("LF", time_pct=12.0, gate_equivalents=33_000),
)


def _validate(phases: tuple[PhaseProfile, ...] | list[PhaseProfile]) -> None:
    if not phases:
        raise ValueError("need at least one phase")


def extensible_processor_area(phases: list[PhaseProfile]) -> int:
    """GE_total: the sum of all hot spots' dedicated hardware."""
    _validate(tuple(phases))
    return sum(p.gate_equivalents for p in phases)


def ge_max(phases: list[PhaseProfile]) -> int:
    """GE_max: the largest single hot spot's hardware."""
    _validate(tuple(phases))
    return max(p.gate_equivalents for p in phases)


def rispp_area(phases: list[PhaseProfile], alpha: float) -> float:
    """RISPP hardware requirement ``alpha * GE_max``."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return alpha * ge_max(phases)


def ge_saving_pct(phases: list[PhaseProfile], alpha: float) -> float:
    """Paper formula: ``(GE_total - alpha*GE_max) * 100 / GE_total``."""
    total = extensible_processor_area(phases)
    return (total - rispp_area(phases, alpha)) * 100.0 / total


def meets_constraint(
    phases: list[PhaseProfile], alpha: float, ge_constraint: float
) -> bool:
    """The paper's feasibility check ``alpha * GE_max <= GE_constraint``."""
    if ge_constraint <= 0:
        raise ValueError("area constraint must be positive")
    return rispp_area(phases, alpha) <= ge_constraint


def max_alpha_for_constraint(
    phases: list[PhaseProfile], ge_constraint: float
) -> float:
    """Largest ``alpha`` that still satisfies the area constraint."""
    if ge_constraint <= 0:
        raise ValueError("area constraint must be positive")
    return ge_constraint / ge_max(phases)


@dataclass(frozen=True)
class AreaComparison:
    """Fig. 1 in numbers: both platforms over one phase profile."""

    phases: tuple[PhaseProfile, ...]
    alpha: float
    extensible_ge: int
    rispp_ge: float
    saving_pct: float

    @classmethod
    def build(
        cls, phases: list[PhaseProfile], alpha: float
    ) -> "AreaComparison":
        return cls(
            phases=tuple(phases),
            alpha=alpha,
            extensible_ge=extensible_processor_area(phases),
            rispp_ge=rispp_area(phases, alpha),
            saving_pct=ge_saving_pct(phases, alpha),
        )
