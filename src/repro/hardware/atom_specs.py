"""Hardware figures of the case-study Atoms (paper Table 1).

The paper implements four Atoms on a Xilinx Virtex-II XC2V3000-6 and
reports per-Atom slices, LUTs, Atom-Container utilization, partial
bitstream size and rotation time over the SelectMap configuration
interface.  All four rotation times equal ``bitstream / 69.2 MB/s``
(nominal SelectMap throughput on Virtex-II is 66 MB/s; the implied
effective rate is consistent across all rows, which is how we calibrate
the port model).

Every Atom Container spans 4 CLB columns over the full device height:
1024 slices / 2048 4-input LUTs (paper §6, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Slices per Atom Container (4 CLB columns, full FPGA height).
CONTAINER_SLICES = 1024
#: 4-input LUTs per Atom Container.
CONTAINER_LUTS = 2048
#: CLB columns per Atom Container.
CONTAINER_CLB_COLUMNS = 4
#: Number of Atom Containers in the paper's prototype (Fig. 10).
PROTOTYPE_CONTAINERS = 4

#: Effective SelectMap transfer rate implied by Table 1 (bytes / microsecond):
#: 59_353 B / 857.63 us.  The nominal Virtex-II figure is 66 MB/s.
SELECTMAP_BYTES_PER_US = 59_353 / 857.63
#: Nominal SelectMap rate quoted in the paper text (bytes / microsecond).
NOMINAL_SELECTMAP_BYTES_PER_US = 66.0


@dataclass(frozen=True)
class AtomHardwareSpec:
    """One row of Table 1."""

    name: str
    slices: int
    luts: int
    bitstream_bytes: int
    #: Rotation time reported by the paper, microseconds.
    reported_rotation_us: float

    @property
    def utilization(self) -> float:
        """Fraction of an Atom Container's slices this Atom occupies."""
        return self.slices / CONTAINER_SLICES

    def rotation_time_us(
        self, bytes_per_us: float = SELECTMAP_BYTES_PER_US
    ) -> float:
        """Model rotation latency: bitstream size over configuration rate."""
        if bytes_per_us <= 0:
            raise ValueError("configuration rate must be positive")
        return self.bitstream_bytes / bytes_per_us

    def rotation_time_cycles(
        self,
        core_mhz: float,
        bytes_per_us: float = SELECTMAP_BYTES_PER_US,
    ) -> int:
        """Rotation latency in core cycles at ``core_mhz`` MHz."""
        if core_mhz <= 0:
            raise ValueError("core frequency must be positive")
        return round(self.rotation_time_us(bytes_per_us) * core_mhz)


#: Table 1, verbatim.  Pack's bitstream (and hence rotation time) is
#: significantly bigger because its container covers an embedded BlockRAM
#: row, despite moderate logic utilization (paper §6).
TABLE1_SPECS: dict[str, AtomHardwareSpec] = {
    "Transform": AtomHardwareSpec("Transform", 517, 1034, 59_353, 857.63),
    "SATD": AtomHardwareSpec("SATD", 407, 808, 58_141, 840.11),
    "Pack": AtomHardwareSpec("Pack", 406, 812, 65_713, 949.53),
    "QuadSub": AtomHardwareSpec("QuadSub", 352, 700, 58_745, 848.84),
}


def average_rotation_us(names: list[str] | None = None) -> float:
    """Mean modelled rotation time over the given Atoms (default: all)."""
    names = names or list(TABLE1_SPECS)
    specs = [TABLE1_SPECS[n] for n in names]
    return sum(s.rotation_time_us() for s in specs) / len(specs)
