"""Atom Containers: the partially reconfigurable slots holding Atoms.

Each Atom Container (AC) is one partially reconfigurable region of the
fabric (4 CLB columns, full device height in the paper's Virtex-II
prototype).  An AC is either empty, loading an Atom (rotation in flight),
or holding a loaded Atom.  ACs carry a soft *owner* task id — ownership
steers replacement decisions, but a loaded Atom serves *any* SI that
needs it regardless of owner (the paper's Fig. 6, T3: Task B's SI runs on
containers that meanwhile 'belong' to Task A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ContainerState(enum.Enum):
    """Lifecycle of an Atom Container."""

    EMPTY = "empty"
    LOADING = "loading"
    LOADED = "loaded"


@dataclass
class AtomContainer:
    """One partially reconfigurable Atom slot."""

    container_id: int
    state: ContainerState = ContainerState.EMPTY
    atom: str | None = None
    owner: str | None = None
    #: Cycle at which an in-flight rotation completes (LOADING only).
    ready_at: int | None = None
    #: Cycle of the last event touching this container (for LRU policies).
    last_used: int = 0
    #: Number of rotations this container has undergone.
    rotations: int = field(default=0)
    #: Permanently out of service (fabric defect); never holds Atoms again.
    failed: bool = False
    #: Bumped on every availability-changing mutation (rotation start or
    #: completion, eviction, failure).  The fabric sums these into its
    #: state generation so derived views can be memoized between
    #: mutations; ``last_used`` touches do not count — they never change
    #: which Atoms are usable.
    generation: int = field(default=0, compare=False, repr=False)

    def is_available(self) -> bool:
        """True when the container holds a usable Atom."""
        return self.state is ContainerState.LOADED and not self.failed

    def mark_failed(self) -> str | None:
        """Take the container out of service; returns the Atom lost (if any).

        A failure clears whatever the container held — including an
        in-flight rotation, which is simply lost.
        """
        lost = self.atom
        self.failed = True
        self.state = ContainerState.EMPTY
        self.atom = None
        self.ready_at = None
        self.generation += 1
        return lost

    def is_busy(self) -> bool:
        return self.state is ContainerState.LOADING

    def begin_rotation(self, atom: str, ready_at: int, *, owner: str | None = None) -> None:
        """Start loading ``atom``; the container is unusable until ``ready_at``.

        Rotating a LOADING container is rejected — the single configuration
        port serialises rotations, and an in-flight one cannot be hijacked.
        """
        if self.failed:
            raise ValueError(
                f"container {self.container_id} is failed and out of service"
            )
        if self.state is ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} is already rotating"
            )
        if ready_at < 0:
            raise ValueError("completion cycle cannot be negative")
        self.state = ContainerState.LOADING
        self.atom = atom
        self.ready_at = ready_at
        if owner is not None:
            self.owner = owner
        self.rotations += 1
        self.generation += 1

    def complete_rotation(self, now: int) -> None:
        """Finish the in-flight rotation (called by the port at ``ready_at``)."""
        if self.state is not ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} has no rotation in flight"
            )
        if self.ready_at is not None and now < self.ready_at:
            raise ValueError(
                f"rotation completes at {self.ready_at}, not at {now}"
            )
        self.state = ContainerState.LOADED
        self.ready_at = None
        self.last_used = now
        self.generation += 1

    def touch(self, now: int) -> None:
        """Record a use of the loaded Atom (replacement-policy input)."""
        if not self.is_available():
            raise ValueError(
                f"container {self.container_id} holds no usable atom"
            )
        self.last_used = now

    def evict(self) -> str | None:
        """Drop the loaded Atom, returning its kind (None if empty)."""
        if self.state is ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} is rotating and cannot be evicted"
            )
        previous = self.atom
        self.state = ContainerState.EMPTY
        self.atom = None
        self.generation += 1
        return previous

    def reassign(self, owner: str | None) -> None:
        """Change the soft owner (the Fig. 6 'reallocation')."""
        self.owner = owner
