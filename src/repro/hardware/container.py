"""Atom Containers: the partially reconfigurable slots holding Atoms.

Each Atom Container (AC) is one partially reconfigurable region of the
fabric (4 CLB columns, full device height in the paper's Virtex-II
prototype).  An AC is either empty, loading an Atom (rotation in flight),
or holding a loaded Atom.  ACs carry a soft *owner* task id — ownership
steers replacement decisions, but a loaded Atom serves *any* SI that
needs it regardless of owner (the paper's Fig. 6, T3: Task B's SI runs on
containers that meanwhile 'belong' to Task A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ContainerState(enum.Enum):
    """Lifecycle of an Atom Container."""

    EMPTY = "empty"
    LOADING = "loading"
    LOADED = "loaded"


@dataclass
class AtomContainer:
    """One partially reconfigurable Atom slot."""

    container_id: int
    state: ContainerState = ContainerState.EMPTY
    atom: str | None = None
    owner: str | None = None
    #: Cycle at which an in-flight rotation completes (LOADING only).
    ready_at: int | None = None
    #: Cycle of the last event touching this container (for LRU policies).
    last_used: int = 0
    #: Number of rotations this container has undergone.
    rotations: int = field(default=0)
    #: Number of evictions (content dropped without a rotation landing);
    #: ``rotations + evictions`` is the container's churn, summed by the
    #: fabric's ``container_churn_total`` telemetry.
    evictions: int = field(default=0)
    #: Permanently out of service (fabric defect); never holds Atoms again.
    failed: bool = False
    #: A transient SEU flipped configuration bits of the loaded Atom: the
    #: Atom is *silently wrong* — still visibly LOADED, but it must not be
    #: trusted for executions.  Cleared by any overwrite (rotation or
    #: eviction) or by quarantine once the scrubber detects it.
    corrupted: bool = False
    #: Detected-corrupt container pulled out of service pending a repair
    #: rotation; only a ``repair=True`` rotation may target it.
    quarantined: bool = False
    #: Bumped on every availability-changing mutation (rotation start or
    #: completion, eviction, failure).  The fabric sums these into its
    #: state generation so derived views can be memoized between
    #: mutations; ``last_used`` touches do not count — they never change
    #: which Atoms are usable.
    generation: int = field(default=0, compare=False, repr=False)

    def is_available(self) -> bool:
        """True when the container holds a usable Atom.

        A *corrupted* container is deliberately still available: the
        fault is silent until the scrubber detects it, so the planner
        and the execution path keep trusting the Atom.  The functional
        model guards against wrong results elsewhere (executions fall
        back to software while a corruption episode is open).
        """
        return (
            self.state is ContainerState.LOADED
            and not self.failed
            and not self.quarantined
        )

    def mark_failed(self) -> str | None:
        """Take the container out of service; returns the Atom lost (if any).

        A failure clears whatever the container held — including an
        in-flight rotation, which is simply lost.  Idempotent: failing an
        already-failed container is a no-op that returns ``None`` and does
        not bump the generation.
        """
        if self.failed:
            return None
        lost = self.atom
        self.failed = True
        self.state = ContainerState.EMPTY
        self.atom = None
        self.ready_at = None
        self.corrupted = False
        self.quarantined = False
        self.generation += 1
        return lost

    def mark_corrupted(self) -> str:
        """A transient SEU hits the loaded Atom's configuration bits.

        The container stays LOADED — the fault is silent — but the Atom
        it reports is wrong until a rotation overwrites it or the
        scrubber quarantines the container.  Returns the affected Atom.
        """
        if self.state is not ContainerState.LOADED or self.atom is None:
            raise ValueError(
                f"container {self.container_id} holds no loaded atom to corrupt"
            )
        if self.failed or self.quarantined:
            raise ValueError(
                f"container {self.container_id} is out of service"
            )
        self.corrupted = True
        self.generation += 1
        return self.atom

    def quarantine(self) -> str | None:
        """Pull a detected-corrupt container out of service for repair.

        Drops the (untrustworthy) Atom and blocks the container from
        ordinary rotations until :meth:`release_quarantine`.  Returns the
        Atom lost, which the repair rotation will re-load.
        """
        if self.failed:
            raise ValueError(
                f"container {self.container_id} is failed and cannot be quarantined"
            )
        if self.state is ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} is rotating and cannot be quarantined"
            )
        lost = self.atom
        if lost is not None:
            self.evictions += 1
        self.state = ContainerState.EMPTY
        self.atom = None
        self.ready_at = None
        self.corrupted = False
        self.quarantined = True
        self.generation += 1
        return lost

    def release_quarantine(self) -> None:
        """Re-admit the container after a successful repair rotation."""
        if not self.quarantined:
            raise ValueError(
                f"container {self.container_id} is not quarantined"
            )
        self.quarantined = False
        self.generation += 1

    def abort_rotation(self) -> str | None:
        """Abandon an in-flight rotation (mid-write bitstream error).

        The partially written configuration is useless: the container
        returns to EMPTY and the Atom being loaded is lost.  Returns that
        Atom so the caller can retry the write.
        """
        if self.state is not ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} has no rotation in flight"
            )
        lost = self.atom
        self.state = ContainerState.EMPTY
        self.atom = None
        self.ready_at = None
        self.generation += 1
        return lost

    def is_busy(self) -> bool:
        return self.state is ContainerState.LOADING

    def begin_rotation(
        self,
        atom: str,
        ready_at: int,
        *,
        owner: str | None = None,
        repair: bool = False,
    ) -> None:
        """Start loading ``atom``; the container is unusable until ``ready_at``.

        Rotating a LOADING container is rejected — the single configuration
        port serialises rotations, and an in-flight one cannot be hijacked.
        A quarantined container only accepts ``repair=True`` rotations.
        """
        if self.failed:
            raise ValueError(
                f"container {self.container_id} is failed and out of service"
            )
        if self.quarantined and not repair:
            raise ValueError(
                f"container {self.container_id} is quarantined; only a repair "
                "rotation may target it"
            )
        if self.state is ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} is already rotating"
            )
        if ready_at < 0:
            raise ValueError("completion cycle cannot be negative")
        self.state = ContainerState.LOADING
        self.atom = atom
        self.ready_at = ready_at
        self.corrupted = False
        if owner is not None:
            self.owner = owner
        self.rotations += 1
        self.generation += 1

    def complete_rotation(self, now: int) -> None:
        """Finish the in-flight rotation (called by the port at ``ready_at``)."""
        if self.state is not ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} has no rotation in flight"
            )
        if self.ready_at is not None and now < self.ready_at:
            raise ValueError(
                f"rotation completes at {self.ready_at}, not at {now}"
            )
        self.state = ContainerState.LOADED
        self.ready_at = None
        self.last_used = now
        self.generation += 1

    def touch(self, now: int) -> None:
        """Record a use of the loaded Atom (replacement-policy input)."""
        if not self.is_available():
            raise ValueError(
                f"container {self.container_id} holds no usable atom"
            )
        self.last_used = now

    def evict(self) -> str | None:
        """Drop the loaded Atom, returning its kind (None if empty)."""
        if self.state is ContainerState.LOADING:
            raise ValueError(
                f"container {self.container_id} is rotating and cannot be evicted"
            )
        previous = self.atom
        if previous is not None:
            self.evictions += 1
        self.state = ContainerState.EMPTY
        self.atom = None
        self.corrupted = False
        self.generation += 1
        return previous

    def reassign(self, owner: str | None) -> None:
        """Change the soft owner (the Fig. 6 'reallocation')."""
        self.owner = owner
