"""Hardware model: Atom Containers, fabric, reconfiguration port, area.

Behavioural substitute for the paper's Virtex-II prototype (Fig. 10,
Table 1): rotation latencies are calibrated to the published bitstream
sizes and SelectMap rate; placement geometry is reduced to container
counts and per-container capacity, which is all the RISPP algorithms
consume.
"""

from .area import (
    H264_PHASES,
    AreaComparison,
    PhaseProfile,
    extensible_processor_area,
    ge_max,
    ge_saving_pct,
    max_alpha_for_constraint,
    meets_constraint,
    rispp_area,
)
from .atom_specs import (
    CONTAINER_CLB_COLUMNS,
    CONTAINER_LUTS,
    CONTAINER_SLICES,
    NOMINAL_SELECTMAP_BYTES_PER_US,
    PROTOTYPE_CONTAINERS,
    SELECTMAP_BYTES_PER_US,
    TABLE1_SPECS,
    AtomHardwareSpec,
    average_rotation_us,
)
from .container import AtomContainer, ContainerState
from .energy import EnergyBreakdown, EnergyModel, extensible_energy, rispp_energy
from .fabric import Fabric
from .reconfig import ReconfigurationPort, RotationJob

__all__ = [
    "AreaComparison",
    "AtomContainer",
    "AtomHardwareSpec",
    "CONTAINER_CLB_COLUMNS",
    "CONTAINER_LUTS",
    "CONTAINER_SLICES",
    "ContainerState",
    "EnergyBreakdown",
    "EnergyModel",
    "Fabric",
    "H264_PHASES",
    "NOMINAL_SELECTMAP_BYTES_PER_US",
    "PROTOTYPE_CONTAINERS",
    "PhaseProfile",
    "ReconfigurationPort",
    "RotationJob",
    "SELECTMAP_BYTES_PER_US",
    "TABLE1_SPECS",
    "average_rotation_us",
    "extensible_energy",
    "extensible_processor_area",
    "ge_max",
    "ge_saving_pct",
    "max_alpha_for_constraint",
    "meets_constraint",
    "rispp_area",
    "rispp_energy",
]
