"""The reconfiguration port: serialised Atom rotations (SelectMap model).

The prototype loads partial bitstreams through the single SelectMap
interface, so rotations are strictly sequential; the rotation latency of
an Atom is its bitstream size divided by the configuration rate
(calibrated from Table 1; see :mod:`repro.hardware.atom_specs`).

Timing semantics (they matter for the Fig. 6 scenario): a rotation
*request* reserves the target container and fixes the job's start/finish
cycles, but the container keeps serving its old Atom until the port
actually starts writing the new bitstream.  This is why, at the paper's
T3, Task B's SI0 still executes on containers that were already
reallocated to Task A — they still contain SI0's Atoms while earlier
rotations occupy the port.  :meth:`ReconfigurationPort.advance` moves
simulated time forward, performing evictions at each job's start and
completions at its finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.atom import AtomCatalogue
from .atom_specs import SELECTMAP_BYTES_PER_US
from .fabric import Fabric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import MetricRegistry


@dataclass
class RotationJob:
    """One scheduled rotation."""

    atom: str
    container_id: int
    requested_at: int
    started_at: int
    finish_at: int
    #: Atom the container held at request time (evicted when the job starts).
    evicted: str | None = None
    started: bool = field(default=False, compare=False)
    completed: bool = field(default=False, compare=False)
    owner: str | None = None
    #: Repair rotation re-loading a quarantined container's Atom; the only
    #: kind of rotation a quarantined container accepts.
    repair: bool = field(default=False, compare=False)
    #: Mid-write bitstream error killed this job (the write never finished).
    aborted: bool = field(default=False, compare=False)

    @property
    def duration(self) -> int:
        return self.finish_at - self.started_at

    @property
    def queue_delay(self) -> int:
        return self.started_at - self.requested_at


class ReconfigurationPort:
    """Single configuration port; one rotation in flight at a time."""

    def __init__(
        self,
        catalogue: AtomCatalogue,
        *,
        core_mhz: float = 100.0,
        bytes_per_us: float = SELECTMAP_BYTES_PER_US,
        metrics: "MetricRegistry | None" = None,
    ):
        if core_mhz <= 0:
            raise ValueError("core frequency must be positive")
        if bytes_per_us <= 0:
            raise ValueError("configuration rate must be positive")
        self.catalogue = catalogue
        self.core_mhz = core_mhz
        self.bytes_per_us = bytes_per_us
        self.busy_until = 0
        self.jobs: list[RotationJob] = []
        self._pending: list[RotationJob] = []
        self._reserved: set[int] = set()
        #: Set by :meth:`attach`: the owning runtime whose event bus
        #: receives a ``RotationCompleted`` per retired job.  Standalone
        #: ports (unit tests, planners) stay unattached and communicate
        #: through :meth:`advance`'s return value alone.
        self._runtime = None
        self._ev_completed: type | None = None
        self._bind_metrics(metrics)

    def attach(self, runtime) -> None:
        """Bind to one runtime (called by ``RisppRuntime.__init__``).

        Once attached, every job this port retires is published as a
        :class:`repro.runtime.events.RotationCompleted` on the runtime's
        event bus — after the port's own state is fully settled, so
        handlers that issue new rotations never race the completion scan.
        """
        if self._runtime is not None and self._runtime is not runtime:
            raise ValueError("reconfiguration port is already attached")
        from ..runtime.events import RotationCompleted

        self._runtime = runtime
        self._ev_completed = RotationCompleted

    def _bind_metrics(self, metrics: "MetricRegistry | None") -> None:
        from ..obs import DISABLED

        obs = metrics if metrics is not None else DISABLED
        self._obs_on = obs.enabled
        self._m_queue_depth = obs.gauge("port_queue_depth")
        self._m_latency = obs.histogram("rotation_latency_cycles")
        self._m_queue_delay = obs.histogram("rotation_queue_delay_cycles")
        self._m_busy = obs.counter("port_busy_cycles_total")

    def rotation_cycles(self, atom: str) -> int:
        """Rotation latency of one Atom kind, in core cycles."""
        kind = self.catalogue.get(atom)
        if not kind.reconfigurable:
            raise ValueError(f"atom kind {atom!r} is static and never rotates")
        if kind.bitstream_bytes <= 0:
            raise ValueError(f"atom kind {atom!r} has no bitstream size")
        time_us = kind.bitstream_bytes / self.bytes_per_us
        return max(1, round(time_us * self.core_mhz))

    def is_reserved(self, container_id: int) -> bool:
        """True while a scheduled or in-flight rotation targets the container."""
        return container_id in self._reserved

    def request(
        self,
        fabric: Fabric,
        atom: str,
        container_id: int,
        now: int,
        *,
        owner: str | None = None,
        repair: bool = False,
    ) -> RotationJob:
        """Queue a rotation of ``atom`` into ``container_id`` at cycle ``now``.

        The container is reserved immediately but keeps serving its current
        Atom until the port starts this job (``started_at``); the new Atom
        becomes usable at ``finish_at``.  A quarantined container only
        accepts ``repair=True`` requests.
        """
        fabric.check_rotatable(atom)
        if container_id in self._reserved:
            raise ValueError(
                f"container {container_id} already has a rotation scheduled"
            )
        container = fabric.container(container_id)
        if container.failed:
            raise ValueError(
                f"container {container_id} is failed and out of service"
            )
        if container.quarantined and not repair:
            raise ValueError(
                f"container {container_id} is quarantined; only a repair "
                "rotation may target it"
            )
        if container.is_busy():  # pragma: no cover - reserved covers this
            raise ValueError(f"container {container_id} is rotating")
        started = max(now, self.busy_until)
        finish = started + self.rotation_cycles(atom)
        job = RotationJob(
            atom=atom,
            container_id=container_id,
            requested_at=now,
            started_at=started,
            finish_at=finish,
            evicted=container.atom,
            owner=owner,
            repair=repair,
        )
        if owner is not None:
            container.reassign(owner)
        self.busy_until = finish
        self.jobs.append(job)
        self._pending.append(job)
        self._reserved.add(container_id)
        if self._obs_on:
            self._m_queue_depth.set(len(self._pending))
        return job

    def advance(self, fabric: Fabric, now: int) -> list[RotationJob]:
        """Process starts and completions up to cycle ``now``.

        Returns the jobs *completed* by this call, in completion order.

        Jobs whose target container died are dropped first: the write is
        lost and the reservation released.  Dropping a *not-yet-started*
        job frees its slot on the serial port, so the remaining unstarted
        jobs are pulled forward and ``busy_until`` is recomputed — later
        rotations must not queue behind a phantom bitstream write.
        """
        if any(
            fabric.container(j.container_id).failed for j in self._pending
        ):
            self._drop_failed(fabric, now)
        completed: list[RotationJob] = []
        for job in sorted(self._pending, key=lambda j: j.started_at):
            container = fabric.container(job.container_id)
            if not job.started and job.started_at <= now:
                container.evict()
                container.begin_rotation(
                    job.atom, job.finish_at, owner=job.owner,
                    repair=job.repair,
                )
                job.started = True
            if job.started and not job.completed and job.finish_at <= now:
                container.complete_rotation(job.finish_at)
                job.completed = True
                completed.append(job)
        for job in completed:
            self._pending.remove(job)
            self._reserved.discard(job.container_id)
        if self._obs_on and completed:
            for job in completed:
                self._m_latency.observe(job.finish_at - job.requested_at)
                self._m_queue_delay.observe(job.queue_delay)
                self._m_busy.inc(job.duration)
            self._m_queue_depth.set(len(self._pending))
        if self._runtime is not None and completed:
            # Publish with the port fully settled: reservation released,
            # queue depth updated.  Handlers may request new rotations —
            # those append to ``_pending`` without disturbing this scan.
            assert self._ev_completed is not None
            for job in completed:
                self._runtime.publish(self._ev_completed(job.finish_at, job=job))
        return completed

    def _drop_failed(self, fabric: Fabric, now: int) -> None:
        """Remove jobs targeting failed containers; close the port gap.

        The remaining unstarted jobs keep their relative order but start
        as early as the port allows: after any write still in flight and
        never before the drop is processed (``now``) or the job's own
        request cycle.
        """
        dropped = False
        for job in list(self._pending):
            if fabric.container(job.container_id).failed:
                dropped = True
                self._pending.remove(job)
                self._reserved.discard(job.container_id)
        if not dropped:
            return
        if self._obs_on:
            self._m_queue_depth.set(len(self._pending))
        self._resequence(now)

    def _resequence(self, now: int) -> None:
        """Recompute start/finish cycles after jobs left the queue.

        Unstarted jobs keep their relative order but start as early as
        the port allows: after any write still in flight and never before
        the requeue cycle (``now``) or the job's own request cycle.
        ``busy_until`` ends at the last job's finish — or ``now`` when
        the queue drained, never earlier (the port cannot re-lease time
        it already spent).
        """
        cursor = now
        for job in sorted(self._pending, key=lambda j: j.started_at):
            if job.started:
                cursor = max(cursor, job.finish_at)
                continue
            duration = job.finish_at - job.started_at
            job.started_at = max(cursor, job.requested_at)
            job.finish_at = job.started_at + duration
            cursor = job.finish_at
        self.busy_until = cursor

    def abort_active(self, fabric: Fabric, now: int) -> RotationJob | None:
        """Kill the write in flight at cycle ``now`` (SelectMap error model).

        The actively writing job — started, not completed, with
        ``started_at <= now < finish_at`` — is aborted: its container's
        partial configuration is discarded (back to EMPTY), the
        reservation is released, and the queue behind it is pulled
        forward from ``now``.  Returns the aborted job, or ``None`` when
        no write is in flight at ``now`` (the fault hits an idle port).
        """
        for job in self._pending:
            if (
                job.started
                and not job.completed
                and job.started_at <= now < job.finish_at
            ):
                fabric.container(job.container_id).abort_rotation()
                job.aborted = True
                self._pending.remove(job)
                self._reserved.discard(job.container_id)
                if self._obs_on:
                    self._m_queue_depth.set(len(self._pending))
                self._resequence(now)
                return job
        return None

    def is_idle(self) -> bool:
        """True when no rotation is scheduled or in flight."""
        return not self._pending

    def next_event(self) -> int | None:
        """Cycle of the earliest pending start or completion (None if idle)."""
        times = []
        for j in self._pending:
            if not j.started:
                times.append(j.started_at)
            if not j.completed:
                times.append(j.finish_at)
        return min(times) if times else None

    def next_completion(self) -> int | None:
        """Cycle of the earliest pending completion (None when idle)."""
        if not self._pending:
            return None
        return min(j.finish_at for j in self._pending)

    def pending_jobs(self) -> list[RotationJob]:
        return list(self._pending)

    def total_rotations(self) -> int:
        return len(self.jobs)

    def total_busy_cycles(self) -> int:
        """Cycles the port spent writing bitstreams so far."""
        return sum(j.duration for j in self.jobs)
