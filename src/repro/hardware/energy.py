"""Energy model (paper §1/§2: MIPS/mW, "power/energy loss" of idle SIs).

The paper motivates RISPP partly by energy: an extensible processor keeps
*all* hot spots' SI hardware on silicon, leaking while unused ("The
hardware for LF, TQ, and MC is not used while processing ME, resulting in
power/energy loss"), whereas RISPP leaks only over ``alpha x GE_max``
worth of fabric — but pays reconfiguration energy per rotation.  The FDF
offset ``alpha * E_rot / (T_sw - T_hw)`` prices exactly this trade.

Behavioural model with three components:

* **static** — leakage proportional to configured slices and time;
* **dynamic** — per-execution energy proportional to the active
  molecule's slices;
* **rotation** — per-rotation energy proportional to the bitstream size
  (the SelectMap write burns roughly constant energy per byte).

Default coefficients are representative 130 nm-era figures; only ratios
matter for every comparison in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from ..core.library import SILibrary
from .atom_specs import AtomHardwareSpec


@dataclass(frozen=True)
class EnergyModel:
    """Energy coefficients of the reconfigurable fabric.

    Parameters
    ----------
    leakage_nw_per_slice:
        Static power per configured slice, nanowatts.
    dynamic_pj_per_slice_cycle:
        Dynamic energy per slice per active cycle, picojoules.
    rotation_nj_per_byte:
        Energy per bitstream byte written through the port, nanojoules.
    core_mhz:
        Core frequency (converts cycles to time for leakage).
    """

    leakage_nw_per_slice: float = 12.0
    dynamic_pj_per_slice_cycle: float = 0.25
    rotation_nj_per_byte: float = 1.2
    core_mhz: float = 100.0

    def __post_init__(self) -> None:
        for value in (
            self.leakage_nw_per_slice,
            self.dynamic_pj_per_slice_cycle,
            self.rotation_nj_per_byte,
        ):
            if value < 0:
                raise ValueError("energy coefficients cannot be negative")
        if self.core_mhz <= 0:
            raise ValueError("core frequency must be positive")

    # -- components ----------------------------------------------------------

    def rotation_energy_nj(self, spec: AtomHardwareSpec) -> float:
        """Energy of rotating one Atom in (bitstream write)."""
        return spec.bitstream_bytes * self.rotation_nj_per_byte

    def static_energy_nj(self, slices: int, cycles: int) -> float:
        """Leakage over ``cycles`` with ``slices`` configured."""
        if slices < 0 or cycles < 0:
            raise ValueError("slices and cycles cannot be negative")
        seconds = cycles / (self.core_mhz * 1e6)
        return self.leakage_nw_per_slice * slices * seconds * 1e9 / 1e9  # nW*s = nJ

    def execution_energy_nj(self, active_slices: int, cycles: int) -> float:
        """Dynamic energy of one SI execution on ``active_slices``."""
        if active_slices < 0 or cycles < 0:
            raise ValueError("slices and cycles cannot be negative")
        return active_slices * cycles * self.dynamic_pj_per_slice_cycle / 1000.0

    def rotation_energy_cycles_equivalent(
        self, spec: AtomHardwareSpec, *, core_power_nw: float = 50_000.0
    ) -> float:
        """Rotation energy expressed in core-cycle-equivalents.

        This is the ``E_rot`` the FDF offset consumes: energies divided by
        the core's per-cycle energy so the break-even compares directly
        with the per-execution cycle saving.
        """
        if core_power_nw <= 0:
            raise ValueError("core power must be positive")
        core_nj_per_cycle = core_power_nw / (self.core_mhz * 1e6) * 1e9 / 1e9
        return self.rotation_energy_nj(spec) / core_nj_per_cycle


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one platform over one workload window."""

    static_nj: float
    dynamic_nj: float
    rotation_nj: float

    @property
    def total_nj(self) -> float:
        return self.static_nj + self.dynamic_nj + self.rotation_nj


def _slices_of(library: SILibrary, molecule) -> int:
    total = 0
    for kind_name in molecule.kinds_used():
        kind = library.catalogue.get(kind_name)
        total += kind.slices * molecule.count(kind_name)
    return total


def extensible_energy(
    model: EnergyModel,
    library: SILibrary,
    chosen: Mapping[str, object],
    executions: Mapping[str, int],
    si_cycles: Mapping[str, int],
    window_cycles: int,
) -> EnergyBreakdown:
    """Energy of a design-time-fixed processor over a workload window.

    All chosen SIs' hardware leaks for the *whole* window (this is the
    paper's §2 complaint); executions burn dynamic energy; there are no
    rotations.
    """
    configured = 0
    for impl in chosen.values():
        if impl is None:
            continue
        configured += _slices_of(library, impl.molecule)
    static = model.static_energy_nj(configured, window_cycles)
    dynamic = 0.0
    for name, count in executions.items():
        impl = chosen.get(name)
        slices = _slices_of(library, impl.molecule) if impl is not None else 0
        dynamic += count * model.execution_energy_nj(slices, si_cycles[name])
    return EnergyBreakdown(static_nj=static, dynamic_nj=dynamic, rotation_nj=0.0)


def rispp_energy(
    model: EnergyModel,
    library: SILibrary,
    container_slices: int,
    num_containers: int,
    executions: Mapping[str, int],
    si_cycles: Mapping[str, int],
    active_molecules: Mapping[str, object],
    rotations: Iterable[str],
    window_cycles: int,
) -> EnergyBreakdown:
    """Energy of the RISPP fabric over a workload window.

    Only the Atom Containers leak; rotations pay bitstream energy;
    executions burn dynamic energy on their molecule's slices.
    """
    if container_slices < 0 or num_containers < 0:
        raise ValueError("container geometry cannot be negative")
    static = model.static_energy_nj(container_slices * num_containers, window_cycles)
    dynamic = 0.0
    for name, count in executions.items():
        impl = active_molecules.get(name)
        slices = _slices_of(library, impl.molecule) if impl is not None else 0
        dynamic += count * model.execution_energy_nj(slices, si_cycles[name])
    rotation = 0.0
    for atom_name in rotations:
        kind = library.catalogue.get(atom_name)
        rotation += kind.bitstream_bytes * model.rotation_nj_per_byte
    return EnergyBreakdown(
        static_nj=static, dynamic_nj=dynamic, rotation_nj=rotation
    )
