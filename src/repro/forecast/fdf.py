"""The Forecast Decision Function (paper §4.1, Fig. 4).

For a block ``B`` and an SI ``S`` the FDF maps the profiled probability
``p`` of reaching ``S`` and the temporal distance ``t`` until its usage to
the *minimum number of expected SI executions* that make ``B`` worth
turning into a Forecast-Candidate:

* ``t`` much smaller than the rotation time ``T_rot``: the rotation could
  not finish in time, so a huge execution count is demanded (the left
  wall of Fig. 4's bathtub);
* ``t`` in the sweet spot (about 1..10 ``T_rot``): only the energy
  break-even ``offset`` is demanded;
* ``t`` far beyond ``10 T_rot``: the rotation would block Atom Containers
  for too long, so the demand rises again (the right slope);
* lower probability scales the whole demand up (the figure's three
  probability sheets).

The energy break-even is ``offset = alpha * E_rot / (T_sw - T_hw)``: the
rotation energy divided by the per-execution saving, scaled by the
paper's trade-off parameter ``alpha``.

The paper omits "some additional adjustment parameters ... for clarity";
``k_near``/``k_far``/``far_horizon`` are our names for them, with
defaults calibrated to reproduce Fig. 4's value range (0..500 executions
over the plotted grid).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def rotation_offset(
    alpha: float, rotation_energy: float, t_sw: float, t_hw: float
) -> float:
    """Energy break-even execution count ``alpha * E_rot / (T_sw - T_hw)``.

    ``rotation_energy`` is in the same energy-per-cycle-equivalent unit as
    the execution times (any consistent unit works; only the ratio
    matters).  Requires ``t_sw > t_hw`` — an SI whose hardware molecule is
    not faster than software can never amortise a rotation.
    """
    if alpha < 0:
        raise ValueError("alpha cannot be negative")
    if rotation_energy < 0:
        raise ValueError("rotation energy cannot be negative")
    if t_sw <= t_hw:
        raise ValueError("software execution must be slower than hardware")
    return alpha * rotation_energy / (t_sw - t_hw)


@dataclass(frozen=True)
class ForecastDecisionFunction:
    """FDF bound to one SI's timing characteristics.

    Parameters
    ----------
    t_rot:
        Average rotation time of the SI's atoms, in cycles.
    t_sw, t_hw:
        SI execution time in software and (fastest) hardware, in cycles.
    rotation_energy:
        Energy cost of one rotation (consistent units; see
        :func:`rotation_offset`).
    alpha:
        The paper's energy-efficiency vs. speed-up trade-off factor.
    k_near, k_far:
        Slopes of the too-close wall and the too-far rise (the paper's
        omitted adjustment parameters).
    far_horizon:
        Distance, in multiples of ``t_rot``, beyond which blocking Atom
        Containers starts being penalised (Fig. 4 uses 10).
    """

    t_rot: float
    t_sw: float
    t_hw: float
    rotation_energy: float = 0.0
    alpha: float = 1.0
    k_near: float = 500.0
    k_far: float = 50.0
    far_horizon: float = 10.0

    def __post_init__(self) -> None:
        if self.t_rot <= 0:
            raise ValueError("rotation time must be positive")
        if self.t_sw <= self.t_hw:
            raise ValueError("software execution must be slower than hardware")
        if self.far_horizon <= 0:
            raise ValueError("far horizon must be positive")

    @property
    def offset(self) -> float:
        """The energy break-even execution count."""
        return rotation_offset(
            self.alpha, self.rotation_energy, self.t_sw, self.t_hw
        )

    def __call__(self, probability: float, distance: float) -> float:
        """Minimum expected SI executions to become an FC candidate.

        ``probability`` in (0, 1]; ``distance`` in cycles (``inf`` yields
        ``inf``: an unreachable SI can never justify a forecast).
        """
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        if distance < 0:
            raise ValueError("distance cannot be negative")
        if math.isinf(distance):
            return math.inf
        near = self.k_near * (self.t_rot - distance) / self.t_rot
        far_edge = self.far_horizon * self.t_rot
        far = self.k_far * (distance - far_edge) / far_edge
        return self.offset + max(near, far, 0.0) / probability

    def surface(
        self, distances: list[float], probabilities: list[float]
    ) -> list[list[float]]:
        """FDF grid: ``surface[i][j] = FDF(probabilities[i], distances[j])``.

        Regenerates the Fig. 4 plot data.
        """
        return [[self(p, t) for t in distances] for p in probabilities]

    def sweet_spot(self) -> tuple[float, float]:
        """The distance range where only the offset is demanded."""
        return (self.t_rot, self.far_horizon * self.t_rot)
