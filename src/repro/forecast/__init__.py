"""Compile-time forecast pipeline (paper section 4).

The scheme's three steps map to submodules:

1. :mod:`~repro.forecast.candidates` — per SI type, determine the FC
   candidates via the :mod:`~repro.forecast.fdf` decision function;
2. :mod:`~repro.forecast.trimming` — per block, remove candidates whose
   SIs can never fit the Atom Containers together (Fig. 5);
3. :mod:`~repro.forecast.placement` / :mod:`~repro.forecast.annotate` —
   choose actual Forecast points on the transposed BB graph and bundle
   them into FC Blocks for the run-time system.

:func:`run_forecast_pipeline` wires the whole flow together.
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph
from ..core.library import SILibrary
from .annotate import FCBlock, ForecastAnnotation, build_fc_blocks
from .candidates import (
    FCCandidate,
    candidates_by_block,
    determine_candidates,
    evaluate_block,
)
from .fdf import ForecastDecisionFunction, rotation_offset
from .placement import ForecastPoint, choose_forecast_points, place_all
from .trimming import BlockTrim, TrimResult, trim_all_blocks, trim_block_candidates

__all__ = [
    "BlockTrim",
    "FCBlock",
    "FCCandidate",
    "ForecastAnnotation",
    "ForecastDecisionFunction",
    "ForecastPoint",
    "TrimResult",
    "build_fc_blocks",
    "candidates_by_block",
    "choose_forecast_points",
    "determine_candidates",
    "evaluate_block",
    "place_all",
    "rotation_offset",
    "run_forecast_pipeline",
    "trim_all_blocks",
    "trim_block_candidates",
]


def run_forecast_pipeline(
    cfg: ControlFlowGraph,
    library: SILibrary,
    fdfs: dict[str, ForecastDecisionFunction],
    available_containers: int,
    *,
    distance: str = "expected",
    far_threshold: float = 0.0,
) -> ForecastAnnotation:
    """End-to-end compile-time phase: candidates -> trimming -> FC blocks.

    Parameters
    ----------
    cfg:
        Profiled basic-block graph of the application.
    library:
        The SI library (provides ``Rep(S)`` and speed-ups for trimming).
    fdfs:
        One Forecast Decision Function per SI name to forecast.  SIs
        absent from the map are not forecasted.
    available_containers:
        Atom Containers of the target platform (the trimming bound).
    distance, far_threshold:
        Passed through to candidate evaluation and placement.
    """
    all_candidates: list[FCCandidate] = []
    for si_name, fdf in fdfs.items():
        if si_name not in library:
            raise ValueError(f"FDF given for unknown SI {si_name!r}")
        all_candidates.extend(
            determine_candidates(cfg, si_name, fdf, distance=distance)
        )
    trim = trim_all_blocks(
        library, candidates_by_block(all_candidates), available_containers
    )
    points = place_all(cfg, trim.kept_candidates(), far_threshold=far_threshold)
    annotation = ForecastAnnotation.from_points(points)
    annotation.validate_against(cfg)
    return annotation
