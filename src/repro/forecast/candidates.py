"""Forecast-Candidate determination (paper §4.1, step 1 of the scheme).

For every SI type, every basic block is evaluated against the SI's
Forecast Decision Function: the block becomes an *FC candidate* when the
profiled expected number of SI executions reaches the FDF's demand at the
block's (probability, temporal distance) operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from ..cfg.profile import SIStats, collect_si_stats
from .fdf import ForecastDecisionFunction


@dataclass(frozen=True)
class FCCandidate:
    """A block judged suitable to forecast one SI."""

    block_id: str
    si_name: str
    probability: float
    distance: float
    expected_executions: float
    required_executions: float

    @property
    def margin(self) -> float:
        """How comfortably the candidate clears the FDF demand."""
        return self.expected_executions - self.required_executions


def evaluate_block(
    stats: SIStats, fdf: ForecastDecisionFunction, *, distance: str = "expected"
) -> FCCandidate | None:
    """Judge one block; returns the candidate or ``None`` if unsuitable.

    ``distance`` selects which profiled temporal distance feeds the FDF:
    ``"min"``, ``"expected"`` (the paper's *typical*) or ``"max"``.
    """
    dist = {
        "min": stats.min_distance,
        "expected": stats.expected_distance,
        "max": stats.max_distance,
    }[distance]
    if stats.probability <= 0 or math.isinf(dist):
        return None
    required = fdf(stats.probability, dist)
    if stats.expected_executions < required:
        return None
    return FCCandidate(
        block_id=stats.block_id,
        si_name=stats.si_name,
        probability=stats.probability,
        distance=dist,
        expected_executions=stats.expected_executions,
        required_executions=required,
    )


def determine_candidates(
    cfg: ControlFlowGraph,
    si_name: str,
    fdf: ForecastDecisionFunction,
    *,
    distance: str = "expected",
    exclude_usage_blocks: bool = True,
) -> list[FCCandidate]:
    """FC candidates of one SI over the whole profiled BB graph.

    Blocks that themselves use the SI are excluded by default: their
    temporal distance is 0, so a rotation started there can never finish
    in time (the paper's "inappropriate candidate" case) — the FDF already
    demands an enormous count there, this just avoids the degenerate
    distance-0 evaluation entirely.
    """
    stats = collect_si_stats(cfg, si_name)
    candidates: list[FCCandidate] = []
    for block_id, block_stats in stats.items():
        if exclude_usage_blocks and cfg.get(block_id).uses_si(si_name):
            continue
        candidate = evaluate_block(block_stats, fdf, distance=distance)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def candidates_by_block(
    all_candidates: list[FCCandidate],
) -> dict[str, list[FCCandidate]]:
    """Group candidates of *all* SI types by block (input to trimming)."""
    grouped: dict[str, list[FCCandidate]] = {}
    for candidate in all_candidates:
        grouped.setdefault(candidate.block_id, []).append(candidate)
    return grouped
