"""FC Blocks: the per-block bundling of Forecast points (paper §4, step 3).

Forecast points landing in the same basic block are combined into one
*FC Block* "which will ease the run-time computation effort": the
run-time system is invoked once per block execution and receives all of
the block's forecasts together.  :class:`ForecastAnnotation` is the final
compile-time artefact handed to the run-time manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from .placement import ForecastPoint


@dataclass(frozen=True)
class FCBlock:
    """All Forecast points placed in one basic block."""

    block_id: str
    points: tuple[ForecastPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("an FC block needs at least one forecast point")
        for p in self.points:
            if p.block_id != self.block_id:
                raise ValueError(
                    f"forecast point for block {p.block_id!r} grouped "
                    f"into FC block {self.block_id!r}"
                )
        names = [p.si_name for p in self.points]
        if len(names) != len(set(names)):
            raise ValueError("duplicate SI forecast within one FC block")

    def si_names(self) -> tuple[str, ...]:
        return tuple(p.si_name for p in self.points)


def build_fc_blocks(points: list[ForecastPoint]) -> list[FCBlock]:
    """Group forecast points by block, preserving deterministic order."""
    grouped: dict[str, list[ForecastPoint]] = {}
    for p in points:
        grouped.setdefault(p.block_id, []).append(p)
    return [
        FCBlock(block_id, tuple(sorted(pts, key=lambda p: p.si_name)))
        for block_id, pts in sorted(grouped.items())
    ]


@dataclass
class ForecastAnnotation:
    """The compile-time output consumed by the run-time phase.

    Maps block ids to their FC Blocks; iterating a program trace, the
    run-time manager fires :meth:`forecasts_at` on every executed block.
    """

    fc_blocks: dict[str, FCBlock] = field(default_factory=dict)

    @classmethod
    def from_points(cls, points: list[ForecastPoint]) -> "ForecastAnnotation":
        return cls({b.block_id: b for b in build_fc_blocks(points)})

    def forecasts_at(self, block_id: str) -> tuple[ForecastPoint, ...]:
        block = self.fc_blocks.get(block_id)
        return block.points if block else ()

    def all_points(self) -> list[ForecastPoint]:
        return [p for b in self.fc_blocks.values() for p in b.points]

    def blocks(self) -> list[str]:
        return list(self.fc_blocks)

    def validate_against(self, cfg: ControlFlowGraph) -> None:
        """Check every annotated block exists in the CFG."""
        for block_id in self.fc_blocks:
            if block_id not in cfg:
                raise ValueError(f"FC block {block_id!r} not present in the CFG")
