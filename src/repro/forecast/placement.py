"""Choosing actual Forecast points out of the FC candidates (paper §4.2).

The paper runs, per SI type, a depth-first search on the *transposed*
BB graph (all edges reversed, i.e. walking backwards in execution order)
over the not-yet-visited FC candidates.  Chains and clusters of
candidates that are adjacent — or separated by only a short stretch of
unsuitable blocks — collapse into a single Forecast point: the candidate
with the greatest temporal lead over the SI usage.  When the DFS leaves
a candidate region and no further candidate is near (gap measured in
cycles against the temporal-distance threshold), the chain is closed and
its best candidate becomes an actual FC.

This de-duplication matters at run time: every FC invokes the run-time
system to re-evaluate rotations, so redundant FCs on every block of a
hot path would burn cycles for no information gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from .candidates import FCCandidate


@dataclass(frozen=True)
class ForecastPoint:
    """An FC finally placed in a block, with its initial on-line values.

    The profiled probability, temporal distance and expected execution
    count are carried along as "initial values for the online phase"
    (§4.2) — the run-time monitor fine-tunes them.
    """

    block_id: str
    si_name: str
    probability: float
    distance: float
    expected_executions: float

    @classmethod
    def from_candidate(cls, candidate: FCCandidate) -> "ForecastPoint":
        return cls(
            block_id=candidate.block_id,
            si_name=candidate.si_name,
            probability=candidate.probability,
            distance=candidate.distance,
            expected_executions=candidate.expected_executions,
        )


def choose_forecast_points(
    cfg: ControlFlowGraph,
    candidates: list[FCCandidate],
    *,
    far_threshold: float = 0.0,
) -> list[ForecastPoint]:
    """Collapse one SI's candidate clusters into actual Forecast points.

    ``candidates`` must all belong to the same SI type (the paper executes
    the algorithm per SI type).  ``far_threshold`` is the cycle gap across
    unsuitable blocks up to which two candidates still count as one chain.
    """
    if not candidates:
        return []
    si_names = {c.si_name for c in candidates}
    if len(si_names) != 1:
        raise ValueError(
            f"placement runs per SI type; got candidates for {sorted(si_names)}"
        )
    by_block = {c.block_id: c for c in candidates}
    transposed = cfg.transposed()

    visited: set[str] = set()
    points: list[ForecastPoint] = []
    # Deterministic order: strongest margin first, so the most valuable
    # candidate seeds its cluster.
    for seed in sorted(by_block.values(), key=lambda c: (-c.margin, c.block_id)):
        if seed.block_id in visited:
            continue
        component: list[FCCandidate] = []
        stack: list[tuple[str, float]] = [(seed.block_id, 0.0)]
        while stack:
            block_id, gap = stack.pop()
            is_candidate = block_id in by_block
            if is_candidate:
                if block_id in visited:
                    continue
                visited.add(block_id)
                component.append(by_block[block_id])
                gap = 0.0
            # Walk backwards (transposed successors = original predecessors)
            # and forwards within the cluster; both directions merge chains.
            for neighbour in sorted(
                set(transposed.successors(block_id)) | set(cfg.successors(block_id))
            ):
                if neighbour in by_block:
                    if neighbour not in visited:
                        stack.append((neighbour, 0.0))
                else:
                    new_gap = gap + cfg.get(neighbour).cycles
                    if new_gap <= far_threshold:
                        stack.append((neighbour, new_gap))
        best = max(component, key=lambda c: (c.distance, c.margin))
        points.append(ForecastPoint.from_candidate(best))
    points.sort(key=lambda p: (p.block_id, p.si_name))
    return points


def place_all(
    cfg: ControlFlowGraph,
    candidates: list[FCCandidate],
    *,
    far_threshold: float = 0.0,
) -> list[ForecastPoint]:
    """Run the per-SI placement for every SI type present in ``candidates``."""
    by_si: dict[str, list[FCCandidate]] = {}
    for c in candidates:
        by_si.setdefault(c.si_name, []).append(c)
    points: list[ForecastPoint] = []
    for si_name in sorted(by_si):
        points.extend(
            choose_forecast_points(cfg, by_si[si_name], far_threshold=far_threshold)
        )
    return points
