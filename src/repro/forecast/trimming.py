"""Trimming FC candidates per block (paper §4.2, Fig. 5).

One block can carry FC candidates for several SIs that will never fit
into the Atom Containers together.  The Fig. 5 algorithm represents each
SI by its Meta-Molecule ``Rep(S)`` and, while the supremum of the
representatives exceeds the number of available Atom Containers, removes
the SI with the *worst expected speed-up per hardware resource*: the one
whose removal frees the most containers per unit of speed-up lost.

The loop aborts (without emptying the whole cluster of SIs — that would
gut the run-time decision system's search space) when no single removal
would reduce the container demand, i.e. when
``for all m in M: m <= sup(M \\ {m})`` (the paper's footnote 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.library import SILibrary
from ..core.molecule import supremum
from .candidates import FCCandidate


@dataclass
class TrimResult:
    """Outcome of trimming one block's FC candidates."""

    kept: list[FCCandidate]
    removed: list[FCCandidate]
    containers_needed: int
    rounds: int = 0
    aborted_on_cluster: bool = False


def trim_block_candidates(
    library: SILibrary,
    block_candidates: list[FCCandidate],
    available_containers: int,
) -> TrimResult:
    """Apply the Fig. 5 algorithm to the FC candidates of one block."""
    if available_containers < 0:
        raise ValueError("available containers cannot be negative")

    # M <- { Rep(S_i) } for the SIs of the FC candidates in this block,
    # projected onto the reconfigurable atom kinds (only those occupy ACs).
    by_si: dict[str, FCCandidate] = {}
    for candidate in block_candidates:
        if candidate.si_name in by_si:
            raise ValueError(
                f"block has two candidates for SI {candidate.si_name!r}"
            )
        by_si[candidate.si_name] = candidate
    reps = {
        name: library.restricted_to_reconfigurable(library.get(name).rep())
        for name in by_si
    }

    kept = dict(by_si)
    removed: list[FCCandidate] = []
    rounds = 0
    aborted = False
    while kept:
        demand = supremum((reps[n] for n in kept), space=library.space)
        if abs(demand) <= available_containers:
            break
        if len(kept) == 1:
            # Never delete the last SI: "we do not want to remove a
            # complete cluster of SIs out of the FCs as this would be a
            # major reduction in the search space for the run-time
            # decision system" (§4.2).
            aborted = True
            break
        rounds += 1
        # Find the SI whose removal frees the most containers per unit of
        # expected speed-up: relation = |sup(M) - sup(M\{m})| / speedup(m).
        relation = 0.0
        worst: str | None = None
        for name in kept:
            others = supremum(
                (reps[n] for n in kept if n != name), space=library.space
            )
            freed = abs(demand - others)
            if freed == 0:
                continue
            speedup = library.get(name).max_expected_speedup()
            score = freed / max(speedup, 1e-12)
            if score > relation:
                relation = score
                worst = name
        if worst is None:
            # No single removal reduces the demand (footnote 8): abort
            # rather than deleting a whole cluster of mutually covering SIs.
            aborted = True
            break
        removed.append(kept.pop(worst))

    final_demand = supremum((reps[n] for n in kept), space=library.space)
    return TrimResult(
        kept=sorted(kept.values(), key=lambda c: c.si_name),
        removed=removed,
        containers_needed=abs(final_demand),
        rounds=rounds,
        aborted_on_cluster=aborted,
    )


@dataclass
class BlockTrim:
    """Per-block trim results over a whole application."""

    results: dict[str, TrimResult] = field(default_factory=dict)

    def kept_candidates(self) -> list[FCCandidate]:
        return [c for r in self.results.values() for c in r.kept]

    def removed_candidates(self) -> list[FCCandidate]:
        return [c for r in self.results.values() for c in r.removed]


def trim_all_blocks(
    library: SILibrary,
    candidates_by_block: dict[str, list[FCCandidate]],
    available_containers: int,
) -> BlockTrim:
    """Trim every block's candidate set independently (the paper's step 2)."""
    trim = BlockTrim()
    for block_id, candidates in candidates_by_block.items():
        trim.results[block_id] = trim_block_candidates(
            library, candidates, available_containers
        )
    return trim
