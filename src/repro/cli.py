"""Command-line interface: regenerate the paper's tables and figures.

``python -m repro list`` shows the available experiments;
``python -m repro fig12`` (etc.) prints the regenerated artifact;
``python -m repro lint`` statically checks the shipped artifacts with
rispp-lint (see :mod:`repro.analysis`);
``python -m repro verify`` replays simulation traces against the formal
reference machine and proves worst-case rotation-latency bounds with
rispp-verify (see :mod:`repro.analysis.verify`);
``python -m repro bench`` times the end-to-end flows and run-time hot
paths and emits ``BENCH_runtime.json`` (see :mod:`repro.bench`);
``python -m repro chaos`` runs a seeded fault-injection campaign with
scrubbing-based recovery and reports resilience metrics (see
:mod:`repro.faults`);
``python -m repro metrics`` runs one shipped workload with the
:mod:`repro.obs` telemetry registry attached and prints the collected
metrics in Prometheus text or JSONL snapshot form;
``python -m repro audit`` statically checks the repro source tree
itself against its implementation contracts with rispp-audit (see
:mod:`repro.analysis.audit`);
``python -m repro serve`` runs the long-lived scenario daemon that
answers chaos scenario requests over local HTTP/JSON with
byte-deterministic reports (see :mod:`repro.serve` and
``docs/serving.md``).
The benchmark suite (``pytest benchmarks/ --benchmark-only``) additionally
*asserts* the reproduction criteria; this CLI is the quick look.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import Callable


def _fig1() -> str:
    from .hardware import AreaComparison, H264_PHASES
    from .reporting import render_table

    comparisons = [AreaComparison.build(list(H264_PHASES), a) for a in (1.0, 1.25, 1.5, 2.0)]
    phases = render_table(
        ["phase", "time %", "GE"],
        [[p.name, p.time_pct, p.gate_equivalents] for p in H264_PHASES],
        title="Fig. 1: H.264 phase profile",
    )
    table = render_table(
        ["alpha", "GE extensible", "GE RISPP", "saving %"],
        [
            [c.alpha, c.extensible_ge, round(c.rispp_ge), round(c.saving_pct, 1)]
            for c in comparisons
        ],
        title="Extensible processor vs RISPP",
    )
    return phases + "\n\n" + table


def _fig3() -> str:
    from .apps.aes import aes_forecast_report
    from .reporting import render_table

    report = aes_forecast_report(runs=8, containers=6)
    table = render_table(
        ["block", "SI", "p", "distance", "expected", "FDF demand"],
        [
            [c.block_id, c.si_name, f"{c.probability:.2f}", f"{c.distance:.0f}",
             f"{c.expected_executions:.1f}", f"{c.required_executions:.1f}"]
            for c in report.candidates
        ],
        title="Fig. 3: AES FC candidates",
    )
    return table + "\n\n" + report.dot


def _fig4() -> str:
    from .forecast import ForecastDecisionFunction
    from .reporting import render_surface

    fdf = ForecastDecisionFunction(
        t_rot=85_000.0, t_sw=544.0, t_hw=24.0, rotation_energy=2_000.0
    )
    ticks = [0.1, 0.2, 0.4, 0.6, 1.0, 1.6, 2.5, 4.0, 6.3, 10.0, 15.8, 25.1, 39.8, 63.1, 100.0]
    surface = fdf.surface([t * fdf.t_rot for t in ticks], [1.0, 0.7, 0.4])
    return render_surface(
        surface,
        ["p=100%", "p=70%", "p=40%"],
        [f"{t:g}" for t in ticks],
        title="Fig. 4: FDF demand over t/T_rot",
    )


def _fig6() -> str:
    from .apps.h264.scenario import run_fig6_scenario

    result = run_fig6_scenario()
    labels = ", ".join(
        f"{n}={result.label(t, n):,}"
        for t, n in (("A", "T0"), ("B", "T1"), ("B", "T2"), ("B", "T3"))
    )
    return f"Fig. 6 checkpoints: {labels}\n\n" + result.runtime.trace.render_timeline()


def _fig11() -> str:
    from .apps.h264 import REFERENCE_CONFIGS, build_h264_library, si_cycles_for_config
    from .reporting import render_table

    library = build_h264_library()
    sis = ("SATD_4x4", "DCT_4x4", "HT_4x4")
    return render_table(
        ["SI", *REFERENCE_CONFIGS.keys()],
        [
            [si, *(si_cycles_for_config(library, si, c) for c in REFERENCE_CONFIGS)]
            for si in sis
        ],
        title="Fig. 11: SI execution time [cycles]",
    )


def _fig12() -> str:
    from .apps.h264 import (
        REFERENCE_CONFIGS,
        build_h264_library,
        macroblock_cycles,
        si_cycles_for_config,
    )
    from .reporting import render_table

    library = build_h264_library()
    paper = {"Opt. SW": 201_065, "4 Atoms": 60_244, "5 Atoms": 59_135, "6 Atoms": 58_287}
    rows = []
    for config in REFERENCE_CONFIGS:
        latencies = {
            s: si_cycles_for_config(library, s, config)
            for s in ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")
        }
        total = macroblock_cycles(latencies)
        rows.append([config, total, paper[config],
                     f"{100 * (total - paper[config]) / paper[config]:+.2f}%"])
    return render_table(
        ["config", "measured", "paper", "deviation"],
        rows,
        title="Fig. 12: all-over encoder performance [cycles/MB]",
    )


def _fig13() -> str:
    from .apps.h264 import build_h264_library
    from .core import pareto_front_of
    from .reporting import render_series

    library = build_h264_library()
    series = {}
    for name in ("SATD_4x4", "HT_4x4", "DCT_4x4", "HT_2x2"):
        si = library.get(name)
        series[f"{name} (front)"] = [
            (p.atoms, p.cycles) for p in pareto_front_of(si)
        ]
    return render_series(
        series, title="Fig. 13: Pareto fronts", x_label="#Atoms", y_label="cycles"
    )


def _table1() -> str:
    from .hardware import TABLE1_SPECS
    from .reporting import render_table

    return render_table(
        ["Atom", "# Slices", "# LUTs", "Utilization", "Bitstream [B]", "Rotation [us]"],
        [
            [n, s.slices, s.luts, f"{100 * s.utilization:.1f}%",
             s.bitstream_bytes, round(s.rotation_time_us(), 2)]
            for n, s in TABLE1_SPECS.items()
        ],
        title="Table 1: atom hardware",
    )


def _table2() -> str:
    from .apps.h264 import TABLE2
    from .reporting import render_table

    kinds = ("Load", "QuadSub", "Pack", "Transform", "SATD", "Add", "Store")
    rows = []
    for si, molecules in TABLE2.items():
        for counts, cycles in molecules:
            rows.append([si, *counts, cycles])
    return render_table(
        ["SI", *kinds, "cycles"], rows, title="Table 2: molecule compositions"
    )


EXPERIMENTS = {
    "fig1": (_fig1, "extensible vs RISPP area (GE)"),
    "fig3": (_fig3, "AES BB graph + FC candidates"),
    "fig4": (_fig4, "the FDF surface"),
    "fig6": (_fig6, "the two-task run-time scenario"),
    "fig11": (_fig11, "SI cycles per resource configuration"),
    "fig12": (_fig12, "whole-encoder performance"),
    "fig13": (_fig13, "Pareto fronts"),
    "table1": (_table1, "atom hardware figures"),
    "table2": (_table2, "molecule compositions"),
}


#: Rule families each diagnostic tool reports on — the single map the
#: ``--help`` epilogs, ``--list-rules`` and the sync test consume.  The
#: union over all tools must equal ``repro.analysis.rules.families()``:
#: a family declared in the catalogue but reachable from no CLI (or vice
#: versa) is a wiring bug, and tests/test_cli.py asserts it.
TOOL_FAMILIES: dict[str, tuple[str, ...]] = {
    "lint": ("lattice", "library", "cfg", "forecast", "schedule", "events"),
    "verify": ("trace", "feasibility"),
    "explore": ("explore",),
    "audit": ("audit",),
}


def _rule_epilog(families: tuple[str, ...]) -> str:
    """The rule catalogue of the given families, for ``--help`` epilogs."""
    from .analysis import RULES

    lines = [
        "rule IDs (--select/--ignore take comma-separated IDs or prefixes,",
        "e.g. --ignore TRC008 or --select TRC):",
    ]
    for rule_id, rule in sorted(RULES.items()):
        if rule.family in families:
            lines.append(f"  {rule_id}  [{rule.severity}] {rule.title}")
    return "\n".join(lines)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    from .core.backend import available_backends

    parser.add_argument(
        "--backend", choices=available_backends(), default=None,
        help=(
            "compute backend for the selection/Pareto kernels "
            "(default: $REPRO_BACKEND, else 'reference')"
        ),
    )


def _apply_backend(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Pin the process-default backend from ``--backend``, if given."""
    if args.backend is None:
        return
    from .core.backend import BackendUnavailableError, set_default_backend

    try:
        set_default_backend(args.backend)
    except BackendUnavailableError as exc:
        parser.error(str(exc))


def _write_guarded(
    parser: argparse.ArgumentParser, path: str, text: str, *, force: bool
) -> None:
    """Write a report file, refusing to clobber existing files.

    Silent overwrites destroy evidence (a baseline report, a previous
    campaign); without ``--force`` an existing target is a usage error
    (exit 2), like any other bad flag combination.
    """
    import os

    if not force and os.path.exists(path):
        parser.error(
            f"refusing to overwrite existing file {path}; pass --force "
            "to replace it"
        )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def _add_selector_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--select", metavar="RULE[,RULE]", default=None,
        help="report only these rule IDs/prefixes (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULE[,RULE]", default=None,
        help="drop these rule IDs/prefixes (applied after --select)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print this tool's rule catalogue and exit",
    )


def _list_rules(families: "tuple[str, ...]") -> int:
    from .analysis import render_rule_list

    print(render_rule_list(families))
    return 0


def _resolve_selectors(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> "tuple[set[str] | None, set[str] | None]":
    from .analysis import expand_selectors

    select = ignore = None
    try:
        if args.select is not None:
            select = expand_selectors(args.select.split(","))
        if args.ignore is not None:
            ignore = expand_selectors(args.ignore.split(","))
    except ValueError as exc:
        parser.error(str(exc))
    return select, ignore


def _lint(argv: list[str]) -> int:
    from .analysis import BUILTIN_SUBJECTS, lint_builtin

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically check the shipped RISPP artifacts (rispp-lint).",
        epilog=_rule_epilog(TOOL_FAMILIES["lint"]),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--containers", type=int, default=None, metavar="N",
        help="also run Atom Container capacity rules against N containers",
    )
    parser.add_argument(
        "--subject", action="append", choices=BUILTIN_SUBJECTS, default=None,
        help="restrict to one case study (repeatable; default: all)",
    )
    _add_selector_args(parser)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(TOOL_FAMILIES["lint"])
    if args.containers is not None and args.containers < 0:
        parser.error(f"--containers must be non-negative, got {args.containers}")
    select, ignore = _resolve_selectors(parser, args)
    report = lint_builtin(
        args.subject or BUILTIN_SUBJECTS, containers=args.containers
    ).filtered(select=select, ignore=ignore)
    print(report.to_json() if args.format == "json" else report.render_text())
    return report.exit_code()


def _verify(argv: list[str]) -> int:
    from .analysis import (
        load_golden,
        run_verify_suite,
        verify_golden_result,
    )
    from .analysis.verify import VERIFY_SUITES, golden_from_runtime, write_golden

    parser = argparse.ArgumentParser(
        prog="repro verify",
        description=(
            "Replay a simulation trace against the formal RISPP reference "
            "machine and statically prove worst-case rotation-latency "
            "bounds (rispp-verify)."
        ),
        epilog=_rule_epilog(TOOL_FAMILIES["verify"]),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--trace", metavar="PATH", default=None,
        help="verify a golden-trace JSON file instead of running a suite",
    )
    source.add_argument(
        "--suite", choices=sorted(VERIFY_SUITES), default="synthetic",
        help="run + verify one shipped scenario (default: synthetic)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scenario sizes (CI mode)",
    )
    parser.add_argument(
        "--emit-golden", metavar="PATH", default=None,
        help="write the verified suite run as a golden-trace JSON file",
    )
    parser.add_argument(
        "--survivable-failures", type=int, metavar="K", default=None,
        help=(
            "also prove degraded-mode feasibility (FEA005): the fabric "
            "minus K failed containers must still hold every forecast "
            "SI's largest molecule"
        ),
    )
    _add_backend_arg(parser)
    _add_selector_args(parser)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(TOOL_FAMILIES["verify"])
    _apply_backend(parser, args)
    select, ignore = _resolve_selectors(parser, args)
    if args.survivable_failures is not None and args.survivable_failures < 0:
        parser.error("--survivable-failures cannot be negative")
    if args.trace is not None:
        if args.emit_golden:
            parser.error("--emit-golden requires a --suite run")
        try:
            golden = load_golden(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load golden trace {args.trace!r}: {exc}")
        result = verify_golden_result(golden)
    else:
        result = run_verify_suite(
            args.suite,
            quick=args.quick,
            survivable_failures=args.survivable_failures,
        )
    report = result.report.merge(result.feasibility.report).filtered(
        select=select, ignore=ignore
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(tool="rispp-verify"))
    if args.emit_golden and result.runtime is not None:
        write_golden(
            golden_from_runtime(result.runtime, suite=result.suite),
            args.emit_golden,
        )
        print(f"golden trace written to {args.emit_golden}", file=sys.stderr)
    return report.exit_code()


def _explore(argv: list[str]) -> int:
    import json

    from .analysis import EXPLORE_SCOPES, explore

    parser = argparse.ArgumentParser(
        prog="repro explore",
        description=(
            "Exhaustively model-check the rotation runtime over a small "
            "scope (rispp-explore): every interleaving of forecasts, SI "
            "executions, clock ticks and fault injections within the "
            "scope's budgets, with the MC invariants checked in every "
            "reachable state. Violations yield minimized counterexamples "
            "replayable with 'repro verify --trace'."
        ),
        epilog=_rule_epilog(TOOL_FAMILIES["explore"]),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scope", choices=sorted(EXPLORE_SCOPES), default="small",
        help="platform scope to exhaust (default: small)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="result output format (default: text)",
    )
    parser.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="override the scope's state-count safety valve",
    )
    parser.add_argument(
        "--emit-counterexample", metavar="PATH", default=None,
        help=(
            "write the first counterexample as golden-trace JSON "
            "(replayable with 'repro verify --trace PATH')"
        ),
    )
    _add_selector_args(parser)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(TOOL_FAMILIES["explore"])
    if args.max_states is not None and args.max_states < 1:
        parser.error(f"--max-states must be positive, got {args.max_states}")
    try:
        result = explore(
            args.scope,
            select=args.select.split(",") if args.select is not None else None,
            ignore=args.ignore.split(",") if args.ignore is not None else None,
            max_states=args.max_states,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        status = "complete" if result.complete else "INCOMPLETE (max-states cap hit)"
        proven = ", ".join(result.rules_proven) or "none"
        print(f"rispp-explore: scope {result.scope!r} — {status}")
        print(
            f"  states explored:  {result.states_explored}"
            f"  (transitions {result.transitions}, "
            f"dedupe ratio {result.dedupe_ratio():.3f})"
        )
        print(f"  terminal states:  {result.terminal_states}")
        print(f"  rules checked:    {', '.join(result.rules_checked)}")
        print(f"  rules proven:     {proven}")
        print(result.report.render_text(tool="rispp-explore"))
    if args.emit_counterexample:
        if not result.counterexamples:
            print(
                "no counterexample to emit (no MC violation found)",
                file=sys.stderr,
            )
        else:
            with open(args.emit_counterexample, "w", encoding="utf-8") as fh:
                json.dump(
                    result.counterexamples[0].golden, fh,
                    indent=2, sort_keys=True,
                )
                fh.write("\n")
            print(
                f"counterexample written to {args.emit_counterexample}",
                file=sys.stderr,
            )
    return result.exit_code()


def _bench(argv: list[str]) -> int:
    from .bench import SUITES, render_report, run_suite, write_report

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Time the end-to-end RISPP flows and the run-time hot paths; "
            "emit a schema-stable JSON performance report."
        ),
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="synthetic",
        help="workload to benchmark (default: synthetic)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the report as JSON (e.g. BENCH_runtime.json)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (CI mode)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help=(
            "journal-commands-per-snapshot cadence of the recovery bench "
            "stage (default: 16)"
        ),
    )
    _add_backend_arg(parser)
    args = parser.parse_args(argv)
    _apply_backend(parser, args)
    if args.checkpoint_every < 1:
        parser.error(
            f"--checkpoint-every must be positive, got {args.checkpoint_every}"
        )
    report = run_suite(
        args.suite, quick=args.quick, checkpoint_every=args.checkpoint_every
    )
    print(render_report(report))
    if args.json:
        write_report(report, args.json)
        print(f"\nreport written to {args.json}")
    # A trace mismatch means an optimization changed event semantics, a
    # verification failure means a trace broke the reference-machine
    # invariants, and a stage equivalence flag means the backends
    # diverged — all are correctness failures, not performance numbers.
    e2e = report["end_to_end"]
    stages_ok = all(
        stage["extra"].get(flag, True)
        for stage in report["stages"]
        for flag in ("results_equal", "trace_equal", "trace_verified")
    )
    ok = (
        e2e.get("trace_equal", True)
        and e2e.get("trace_verified", True)
        and stages_ok
    )
    return 0 if ok else 1


#: Metadata file a checkpointed chaos run writes into its store, so
#: ``--resume`` can rebuild the identical scenario without re-specifying
#: the campaign flags.
CHAOS_RUN_META = "run.json"
CHAOS_RUN_KIND = "rispp-chaos-run"


def _chaos(argv: list[str]) -> int:
    import json
    import math
    import os
    from pathlib import Path

    from .faults import (
        CHAOS_SUITES,
        chaos_ok,
        render_chaos_report,
        run_chaos_suite,
    )
    from .recovery import JOURNAL_NAME, RecoveryPlan, SimulatedCrash

    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Run a seeded fault-injection campaign over one shipped suite: "
            "inject transient SEUs, mid-write bitstream errors and "
            "permanent defects, recover via scrubbing/quarantine/repair, "
            "verify the trace and report resilience metrics. Deterministic: "
            "same seed, byte-identical report. With --checkpoint-dir the "
            "campaign journals into a recovery store and can be resumed "
            "after a crash (--resume) to the byte-identical report."
        ),
    )
    parser.add_argument(
        "--suite", choices=sorted(CHAOS_SUITES), default=None,
        help="workload to fuzz (default: synthetic)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="fault-schedule seed, positive (default: 1)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=None, metavar="R",
        help="expected faults per million cycles (default: 5.0)",
    )
    parser.add_argument(
        "--scrub-period", type=int, default=None, metavar="CYCLES",
        help="readback-scrubber pass period (default: 10000)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="bitstream write retries before giving up (default: 3)",
    )
    parser.add_argument(
        "--backoff-cycles", type=int, default=None, metavar="CYCLES",
        help="base retry backoff; doubles per attempt (default: 1000)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scenario sizes (CI mode)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="PATH", default=None,
        help=(
            "journal the campaign into this recovery store and snapshot "
            "periodically (see docs/recovery.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="journal commands between snapshots (default: 64)",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help=(
            "resume an interrupted campaign from its recovery store; the "
            "scenario flags come from the store's run.json"
        ),
    )
    parser.add_argument(
        "--crash-at", type=int, default=None, metavar="CYCLE",
        help=(
            "seeded crash injection: simulate dying at the first journaled "
            "command at or past CYCLE (exit code 3)"
        ),
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format (default: text)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the report as JSON (e.g. CHAOS_synthetic.json)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --json file instead of refusing",
    )
    _add_backend_arg(parser)
    args = parser.parse_args(argv)
    _apply_backend(parser, args)

    resume = args.resume is not None
    if resume and args.checkpoint_dir is not None:
        parser.error("--resume and --checkpoint-dir are mutually exclusive")
    store = (
        Path(args.resume)
        if resume
        else Path(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else None
    )
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        parser.error(
            f"--checkpoint-every must be positive, got {args.checkpoint_every}"
        )
    if args.crash_at is not None and args.crash_at < 0:
        parser.error(f"--crash-at cannot be negative, got {args.crash_at}")
    if store is None:
        for flag, value in (
            ("--checkpoint-every", args.checkpoint_every),
            ("--crash-at", args.crash_at),
        ):
            if value is not None:
                parser.error(f"{flag} needs --checkpoint-dir or --resume")

    if resume:
        conflicting = [
            flag
            for flag, value in (
                ("--suite", args.suite),
                ("--seed", args.seed),
                ("--fault-rate", args.fault_rate),
                ("--scrub-period", args.scrub_period),
                ("--max-retries", args.max_retries),
                ("--backoff-cycles", args.backoff_cycles),
            )
            if value is not None
        ]
        if args.quick:
            conflicting.append("--quick")
        if conflicting:
            parser.error(
                "scenario flags conflict with --resume (the scenario comes "
                "from the store's run.json): " + ", ".join(conflicting)
            )
        assert store is not None
        if not store.is_dir():
            parser.error(f"--resume path {store} is not a directory")
        journal_path = store / JOURNAL_NAME
        if not journal_path.is_file() or not os.access(journal_path, os.R_OK):
            parser.error(
                f"--resume store has no readable journal at {journal_path}"
            )
        meta_path = store / CHAOS_RUN_META
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read run metadata {meta_path}: {exc}")
        if not isinstance(meta, dict) or meta.get("kind") != CHAOS_RUN_KIND:
            parser.error(f"{meta_path} is not a chaos run-metadata file")
        try:
            suite = str(meta["suite"])
            seed = int(meta["seed"])
            fault_rate = float(meta["fault_rate"])
            quick = bool(meta["quick"])
            scrub_period = int(meta["scrub_period"])
            max_retries = int(meta["max_retries"])
            backoff_cycles = int(meta["backoff_cycles"])
        except (KeyError, TypeError, ValueError) as exc:
            parser.error(f"run metadata {meta_path} is incomplete: {exc!r}")
    else:
        suite = args.suite if args.suite is not None else "synthetic"
        seed = args.seed if args.seed is not None else 1
        fault_rate = args.fault_rate if args.fault_rate is not None else 5.0
        quick = args.quick
        scrub_period = (
            args.scrub_period if args.scrub_period is not None else 10_000
        )
        max_retries = args.max_retries if args.max_retries is not None else 3
        backoff_cycles = (
            args.backoff_cycles if args.backoff_cycles is not None else 1_000
        )

    if not math.isfinite(fault_rate) or fault_rate < 0:
        parser.error(
            f"--fault-rate must be finite and non-negative, got {fault_rate}"
        )
    if seed < 1:
        parser.error(f"--seed must be positive, got {seed}")

    recovery = None
    if store is not None:
        recovery = RecoveryPlan(
            store=store,
            checkpoint_every=(
                args.checkpoint_every
                if args.checkpoint_every is not None
                else 64
            ),
            crash_at=args.crash_at,
            resume=resume,
        )
        if not resume:
            store.mkdir(parents=True, exist_ok=True)
            meta = {
                "kind": CHAOS_RUN_KIND,
                "schema_version": 1,
                "suite": suite,
                "seed": seed,
                "fault_rate": fault_rate,
                "quick": quick,
                "scrub_period": scrub_period,
                "max_retries": max_retries,
                "backoff_cycles": backoff_cycles,
            }
            (store / CHAOS_RUN_META).write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )

    try:
        report = run_chaos_suite(
            suite,
            seed=seed,
            fault_rate=fault_rate,
            quick=quick,
            scrub_period=scrub_period,
            max_retries=max_retries,
            backoff_cycles=backoff_cycles,
            recovery=recovery,
        )
    except SimulatedCrash as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        print(
            f"resume with: python -m repro chaos --resume {exc.store}",
            file=sys.stderr,
        )
        return 3
    except ValueError as exc:
        parser.error(str(exc))
    rendered_json = json.dumps(report, indent=2, sort_keys=True)
    if args.format == "json":
        print(rendered_json)
    else:
        print(render_chaos_report(report))
    if args.json:
        _write_guarded(parser, args.json, rendered_json + "\n", force=args.force)
        print(f"report written to {args.json}", file=sys.stderr)
    return 0 if chaos_ok(report) else 1


def _metrics(argv: list[str]) -> int:
    from .obs import METRIC_SUITES, run_metrics_suite, to_jsonl, to_prometheus

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description=(
            "Run one shipped workload with the repro.obs telemetry "
            "registry attached and print the collected metrics "
            "(catalogue: docs/observability.md)."
        ),
    )
    parser.add_argument(
        "--suite", choices=sorted(METRIC_SUITES), default="synthetic",
        help="workload to instrument (default: synthetic)",
    )
    parser.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help=(
            "output format: Prometheus text exposition or JSONL snapshot "
            "(default: prom)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scenario sizes (CI mode)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the export to a file",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="overwrite an existing --output file instead of refusing",
    )
    _add_backend_arg(parser)
    args = parser.parse_args(argv)
    _apply_backend(parser, args)
    registry, _runtime = run_metrics_suite(args.suite, quick=args.quick)
    if args.format == "prom":
        # The scrape view: everything recorded, span timers included.
        text = to_prometheus(registry)
    else:
        # The machine-readable snapshot: deterministic series only, so
        # the same suite+flags produce byte-identical output.
        text = to_jsonl(registry)
    print(text, end="")
    if args.output:
        _write_guarded(parser, args.output, text, force=args.force)
        print(f"metrics written to {args.output}", file=sys.stderr)
    return 0


def _audit(argv: list[str]) -> int:
    from .analysis import run_audit
    from .analysis.rules import rules_of_family

    parser = argparse.ArgumentParser(
        prog="repro audit",
        description=(
            "Statically check the repro source tree itself against its "
            "implementation contracts (rispp-audit): seeded determinism "
            "(no stray randomness, wall-clock or environment reads, no "
            "order-sensitive set iteration), obs-catalogue resolution of "
            "every instrumentation site, registered rule IDs at every "
            "diag() call, and compute-backend kernel purity."
        ),
        epilog=_rule_epilog(TOOL_FAMILIES["audit"]),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--root", metavar="PATH", default=None,
        help="source tree to audit (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=(
            "suppression baseline (default: audit_baseline.json at the "
            "repository root when present; pass 'none' to disable)"
        ),
    )
    _add_selector_args(parser)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(TOOL_FAMILIES["audit"])
    select, ignore = _resolve_selectors(parser, args)
    audit_rules = {
        rule.rule_id
        for family in TOOL_FAMILIES["audit"]
        for rule in rules_of_family(family)
    }
    for chosen in sorted((select or set()) | (ignore or set())):
        if chosen not in audit_rules:
            parser.error(
                f"rule {chosen!r} is not an audit rule; see 'repro audit --list-rules'"
            )
    if args.baseline is None:
        baseline: "str | None" = "auto"
    elif args.baseline.lower() == "none":
        baseline = None
    else:
        baseline = args.baseline
    try:
        result = run_audit(args.root, baseline=baseline)
    except (OSError, SyntaxError, ValueError) as exc:
        parser.error(str(exc))
    report = result.report.filtered(select=select, ignore=ignore)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(tool="rispp-audit"))
        print(result.summary(), file=sys.stderr)
    return report.exit_code()


def _serve(argv: list[str]) -> int:
    from .serve import DEFAULT_HOST, DEFAULT_PORT, serve

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the long-lived scenario daemon: accept chaos scenario "
            "requests (suite, seed, fault-rate, backend, fault-handling "
            "config) over a local HTTP/JSON API, shard them across a "
            "worker process pool and answer with byte-deterministic "
            "reports. Serves /healthz, /readyz and a Prometheus /metrics "
            "exposition; POST /shutdown stops it gracefully (exit 0). "
            "API schema and endpoint contracts: docs/serving.md."
        ),
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST, metavar="ADDR",
        help=f"address to bind (default: {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=(
            "TCP port to bind; 0 lets the kernel pick a free one, "
            f"announced on stdout (default: {DEFAULT_PORT})"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="scenario worker processes (default: 1)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.port <= 65535:
        parser.error(f"--port must be in [0, 65535], got {args.port}")
    if args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    return serve(args.host, args.port, workers=args.workers)


#: Every flag-taking subcommand, dispatch-ready.  This is the canonical
#: CLI tool surface: the README's tool table is validated against it
#: (plus ``list``/``all``/``<experiment>``) by
#: :mod:`repro.analysis.docs_check`.
TOOL_COMMANDS: dict[str, "Callable[[list[str]], int]"] = {
    "lint": _lint,
    "verify": _verify,
    "explore": _explore,
    "audit": _audit,
    "bench": _bench,
    "chaos": _chaos,
    "metrics": _metrics,
    "serve": _serve,
}


def tool_help(command: str) -> str:
    """The captured ``--help`` text of one CLI tool (docs_check gate)."""
    import contextlib
    import io

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        try:
            TOOL_COMMANDS[command](["--help"])
        except SystemExit:
            pass
    return buf.getvalue()


def _usage() -> str:
    names = " | ".join(EXPERIMENTS)
    tools = " | ".join(TOOL_COMMANDS)
    helps = ", ".join(f"'repro {name} --help'" for name in TOOL_COMMANDS)
    return (
        f"usage: repro {{list | all | {tools} | <experiment>}}\n"
        f"experiments: {names}\n"
        f"run 'repro list' for descriptions; {helps} for tool flags"
    )


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(_usage())
        return 0
    command, rest = args[0], args[1:]
    if command in TOOL_COMMANDS:
        return TOOL_COMMANDS[command](rest)
    if rest:
        print(f"repro {command}: unexpected arguments {rest}", file=sys.stderr)
        return 2
    if command == "list":
        for name, (_fn, desc) in EXPERIMENTS.items():
            print(f"{name:8s} {desc}")
        return 0
    if command == "all":
        for name, (fn, _desc) in EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            print(fn())
            print()
        return 0
    if command in EXPERIMENTS:
        fn, _desc = EXPERIMENTS[command]
        print(fn())
        return 0
    hint = ""
    close = difflib.get_close_matches(
        command,
        [*EXPERIMENTS, "list", "all", *TOOL_COMMANDS],
        n=1,
    )
    if close:
        hint = f" (did you mean {close[0]!r}?)"
    print(
        f"repro: unknown experiment {command!r}{hint}\n{_usage()}",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
