"""Fig. 7 — flow of the test application.

Runs the functional encoder pipeline on synthetic macroblocks and checks
the exact invocation structure the figure draws: 16 candidate SATDs per
sub-block, minimum-SATD selection feeding DCT, 16 DCTs then one HT_4x4
on the DC coefficients, chroma's 8 DCTs + 2 HT_2x2, and the quality
manager's intra-injection decision.
"""

import numpy as np

from repro.apps.h264 import (
    EncoderPipeline,
    macroblock_stream,
    satd_4x4,
)
from repro.apps.h264.blocks import split_into_4x4
from repro.reporting import render_table


def encode_stream(n):
    pipeline = EncoderPipeline()
    mbs = macroblock_stream(n, seed=11)
    return mbs, [pipeline.encode_macroblock(mb) for mb in mbs]


def test_fig07_encoder_flow(benchmark, save_artifact):
    mbs, encoded = benchmark.pedantic(encode_stream, args=(2,), rounds=2, iterations=1)

    for mb, out in zip(mbs, encoded):
        # 16 sub-blocks x 16 candidates -> 256 SATD; 16 luma + 8 chroma
        # DCTs; 1 luma HT_4x4; 2 chroma HT_2x2.
        assert out.si_counts == {
            "SATD_4x4": 256,
            "DCT_4x4": 24,
            "HT_4x4": 1,
            "HT_2x2": 2,
        }
        # The candidate with minimum SATD was chosen for every sub-block.
        grid = split_into_4x4(mb.luma)
        for sub in range(16):
            satds = [
                satd_4x4(grid[sub // 4][sub % 4], c) for c in mb.candidates[sub]
            ]
            assert out.best_satd[sub] == min(satds)
        # DC block exists and chroma coefficients are present.
        assert out.dc_block.shape == (4, 4)
        assert set(out.chroma_dc) == {"cb", "cr"}
        assert out.chroma_dc["cb"].shape == (2, 2)

    # Quality manager: an impossible threshold forces intra injection.
    eager = EncoderPipeline(intra_threshold=0)
    assert eager.encode_macroblock(mbs[0]).intra_injected
    lax = EncoderPipeline(intra_threshold=10**9)
    assert not lax.encode_macroblock(mbs[0]).intra_injected

    rows = []
    for i, out in enumerate(encoded):
        rows.append(
            [
                i,
                int(np.mean(out.best_satd)),
                int(np.max(out.best_satd)),
                "yes" if out.intra_injected else "no",
            ]
        )
    table = render_table(
        ["MB", "mean best SATD", "max best SATD", "intra injected"],
        rows,
        title="Fig. 7: encoder flow per macroblock",
    )
    save_artifact("fig07_encoder_flow.txt", table)
