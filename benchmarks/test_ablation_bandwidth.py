"""Ablation — configuration-memory bandwidth.

The paper: "The rotation time generally corresponds to the memory
transfer rate (e.g. 66 MB/s for Virtex-II) and the bitstream size and our
concept would directly profit from faster rotation time, due to e.g.
faster memory bandwidth."  This bench sweeps the port rate from half the
Virtex-II SelectMap figure up to ICAP-class bandwidths and measures the
profit directly: the latency from a forecast firing until the SI first
executes in hardware, and the shrinking forecast horizon the FDF needs.
"""

from repro.apps.h264 import build_h264_library
from repro.forecast import ForecastDecisionFunction
from repro.hardware import SELECTMAP_BYTES_PER_US
from repro.reporting import render_table
from repro.runtime import RisppRuntime

#: Port rates in bytes/us: half SelectMap, Virtex-II SelectMap (Table 1),
#: 2x, 4x, and an ICAP-class interface.
RATES = {
    "SelectMap / 2": SELECTMAP_BYTES_PER_US / 2,
    "SelectMap (Virtex-II)": SELECTMAP_BYTES_PER_US,
    "SelectMap x 2": SELECTMAP_BYTES_PER_US * 2,
    "SelectMap x 4": SELECTMAP_BYTES_PER_US * 4,
    "ICAP-class (800 MB/s)": 800.0,
}


def time_to_hardware(rate: float) -> tuple[int, int]:
    """Cycles from forecast to first HW execution of SATD_4x4."""
    library = build_h264_library()
    rt = RisppRuntime(library, 6, core_mhz=100.0)
    rt.port.bytes_per_us = rate
    rt.forecast("SATD_4x4", 0, expected=1000)
    ready = max(j.finish_at for j in rt.port.jobs)
    # Execute until hardware mode engages; the switch time is `ready`.
    cycles = rt.execute_si("SATD_4x4", ready + 1)
    assert cycles < 544
    return ready, rt.stats.rotations_requested


def sweep():
    results = {}
    for name, rate in RATES.items():
        ready, rotations = time_to_hardware(rate)
        # The FDF sweet spot scales with the rotation time directly.
        fdf = ForecastDecisionFunction(
            t_rot=ready / max(rotations, 1),
            t_sw=544.0,
            t_hw=24.0,
            rotation_energy=1000.0,
        )
        results[name] = {
            "rate": rate,
            "ready": ready,
            "rotations": rotations,
            "sweet_low": fdf.sweet_spot()[0],
        }
    return results


def test_ablation_bandwidth(benchmark, save_artifact):
    results = benchmark.pedantic(sweep, rounds=2, iterations=1)

    names = list(RATES)
    readies = [results[n]["ready"] for n in names]
    # Faster configuration memory -> strictly earlier hardware availability.
    assert readies == sorted(readies, reverse=True)
    # Rotation count is bandwidth-independent (same molecules chosen).
    assert len({results[n]["rotations"] for n in names}) == 1
    # Doubling the rate halves the time to hardware (pure transfer bound).
    half = results["SelectMap / 2"]["ready"]
    base = results["SelectMap (Virtex-II)"]["ready"]
    assert half / base == benchmark_approx(2.0)
    # The usable forecast horizon shrinks proportionally: shorter-lead
    # forecast points become viable.
    sweet = [results[n]["sweet_low"] for n in names]
    assert sweet == sorted(sweet, reverse=True)

    table = render_table(
        ["port", "rate [B/us]", "forecast->HW [cycles]", "rotations",
         "min useful lead [cycles]"],
        [
            [
                name,
                round(results[name]["rate"], 1),
                results[name]["ready"],
                results[name]["rotations"],
                round(results[name]["sweet_low"]),
            ]
            for name in names
        ],
        title="Ablation: configuration-memory bandwidth (paper §6 remark)",
    )
    save_artifact("ablation_bandwidth.txt", table)


def benchmark_approx(value, rel=0.02):
    import pytest

    return pytest.approx(value, rel=rel)
