"""Shared benchmark fixtures: artifact saving and common libraries."""

import pathlib

import pytest

from repro.apps.h264 import build_h264_library

OUTPUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture()
def save_artifact():
    """Write a regenerated table/figure under ``benchmarks/out/``."""

    def _save(name: str, text: str) -> pathlib.Path:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / name
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def h264_library():
    return build_h264_library()
