"""Ablation — multi-mode operation (paper §2/§5).

"The characteristics of an application may widely vary during run-time
due to switching to different operation modes"; the Fig. 6 discussion
concludes RISPP "is suitable for Multi-Mode systems with their changing
demands".  This bench alternates two operation modes — video encoding
(SATD/DCT) and post-processing (SI0/SI1, the task-B SIs of the Fig. 6
library) — whose joint working set exceeds the fabric, and compares:

* RISPP, re-rotating at each mode switch (forecast-driven), against
* a design-time-fixed extensible processor that must split the same atom
  budget across both modes forever.
"""

from repro.apps.h264.scenario import build_scenario_library
from repro.baselines import ExtensibleProcessor
from repro.core import ForecastedSI
from repro.reporting import render_table
from repro.runtime import RisppRuntime

MODE_PERIOD = 2_000_000  # cycles per mode residency (20 ms at 100 MHz)
MODES = [
    # (name, {si: executions per period})
    ("video", {"SATD_4x4": 1500, "DCT_4x4": 200}),
    ("post", {"SI0": 1200, "SI1": 600}),
]
PERIODS = 6
BUDGET = 6


def run_rispp(library):
    rt = RisppRuntime(library, BUDGET, core_mhz=100.0)
    now = 0
    total = 0
    previous: list[str] = []
    for period in range(PERIODS):
        mode_name, workload = MODES[period % 2]
        for si in previous:
            rt.forecast_end(si, now)
        for si, count in workload.items():
            rt.forecast(si, now, expected=count)
        previous = list(workload)
        # Rotations happen during the mode's ramp-in; the SI burst starts
        # a quarter period in (decoder pipelines buffer that long).
        now += MODE_PERIOD // 4
        for si, count in workload.items():
            for _ in range(count):
                cycles = rt.execute_si(si, now)
                total += cycles
                now += cycles
        now += MODE_PERIOD // 4
    return rt, total


def run_asip(library):
    # Design-time selection sees the *average* workload of both modes.
    average = {}
    for _name, workload in MODES:
        for si, count in workload.items():
            average[si] = average.get(si, 0) + count * (PERIODS // 2)
    asip = ExtensibleProcessor.design(
        library,
        [ForecastedSI(library.get(si), c) for si, c in average.items()],
        atom_budget=BUDGET,
    )
    total = 0
    for period in range(PERIODS):
        _mode, workload = MODES[period % 2]
        total += asip.execute_workload(workload)
    return asip, total


def compare():
    library = build_scenario_library()
    rt, rispp_cycles = run_rispp(library)
    asip, asip_cycles = run_asip(library)
    return rt, rispp_cycles, asip, asip_cycles


def test_ablation_multimode(benchmark, save_artifact):
    rt, rispp_cycles, asip, asip_cycles = benchmark.pedantic(
        compare, rounds=2, iterations=1
    )

    # The joint working set does not fit the budget at once: the ASIP must
    # leave SIs in software.
    software_sis = [n for n, impl in asip.chosen.items() if impl is None]
    assert software_sis, "the fixed ASIP cannot cover both modes"

    # RISPP rotates across mode switches...
    assert rt.stats.rotations_requested >= 6
    # ...and serves the bulk of executions in hardware.
    assert rt.stats.hw_fraction() > 0.8

    # Time-multiplexing the fabric beats the design-time split.
    assert rispp_cycles < asip_cycles
    advantage = asip_cycles / rispp_cycles
    assert advantage > 1.3

    table = render_table(
        ["platform", "SI cycles", "HW fraction", "rotations", "software SIs"],
        [
            [
                f"RISPP ({BUDGET} ACs, rotating)",
                rispp_cycles,
                f"{100 * rt.stats.hw_fraction():.1f}%",
                rt.stats.rotations_requested,
                "-",
            ],
            [
                f"ASIP ({BUDGET} dedicated atoms)",
                asip_cycles,
                "-",
                0,
                ", ".join(software_sis) or "-",
            ],
        ],
        title=(
            f"Multi-mode ablation: {PERIODS} alternating mode periods, "
            f"RISPP advantage {advantage:.2f}x"
        ),
    )
    save_artifact("ablation_multimode.txt", table)
