"""Fig. 12 — all-over performance of the H.264 encoding engine.

Regenerates the whole-pipeline cycles per macroblock for Opt. SW and the
4/5/6-Atom RISPP configurations.  The paper's numbers are 201,065 /
60,244 / 59,135 / 58,287 cycles; the reproduction must stay within 0.5%
on every bar and show the shape: >3x speed-up to the minimal hardware,
then Amdahl-limited marginal gains.
"""

import pytest

from repro.apps.h264 import (
    REFERENCE_CONFIGS,
    macroblock_cycles,
    si_cycles_for_config,
)
from repro.reporting import render_bars, render_table

PAPER_FIG12 = {
    "Opt. SW": 201_065,
    "4 Atoms": 60_244,
    "5 Atoms": 59_135,
    "6 Atoms": 58_287,
}
SIS = ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")


def regenerate(library):
    totals = {}
    for config in REFERENCE_CONFIGS:
        latencies = {si: si_cycles_for_config(library, si, config) for si in SIS}
        totals[config] = macroblock_cycles(latencies)
    return totals


def test_fig12_encoder_performance(benchmark, save_artifact, h264_library):
    totals = benchmark(regenerate, h264_library)

    # Absolute agreement within 0.5% on every bar.
    for config, paper in PAPER_FIG12.items():
        assert totals[config] == pytest.approx(paper, rel=0.005), config

    # Shape: "more than 300% faster than ... optimized software".
    assert totals["Opt. SW"] / totals["4 Atoms"] > 3.0
    # "Amdahl's law prevents significant further speed-up when offering
    # more Atoms": under 5% total gain from 4 to 6 atoms.
    assert totals["4 Atoms"] > totals["5 Atoms"] > totals["6 Atoms"]
    assert (totals["4 Atoms"] - totals["6 Atoms"]) / totals["4 Atoms"] < 0.05

    rows = [
        [
            config,
            totals[config],
            PAPER_FIG12[config],
            f"{100 * (totals[config] - PAPER_FIG12[config]) / PAPER_FIG12[config]:+.2f}%",
        ]
        for config in PAPER_FIG12
    ]
    table = render_table(
        ["config", "measured [cycles]", "paper [cycles]", "deviation"],
        rows,
        title="Fig. 12: all-over performance of the H.264 encoding engine (per MB)",
    )
    chart = render_bars(
        totals, title="Fig. 12 (linear scale)", unit=" cyc"
    )
    save_artifact("fig12_encoder_performance.txt", table + "\n\n" + chart)
