"""Extension bench — the full TQ + entropy chain: rate-distortion curves.

Fig. 1 groups Transform *and Quantization* into the TQ hot spot; the
published evaluation only times the transform SIs.  This bench exercises
the completed TQ substrate (quantizer, rescaler, inverse transform,
run-level entropy coder) on a closed-loop encoded sequence and checks the
textbook behaviours: monotone rate-distortion trade-off, cheaper inter
frames, near-lossless coding at QP 0.
"""

from repro.apps.h264 import encode_sequence, synthetic_frame
from repro.reporting import render_table

QPS = (0, 12, 24, 36, 48)


def sweep():
    frames = [synthetic_frame(64, 64, seed=3, shift=s) for s in range(3)]
    return {qp: encode_sequence(frames, qp) for qp in QPS}


def test_extension_ratedistortion(benchmark, save_artifact):
    reports = benchmark.pedantic(sweep, rounds=2, iterations=1)

    psnrs = [reports[qp].mean_psnr() for qp in QPS]
    bits = [reports[qp].total_bits() for qp in QPS]

    # Monotone rate-distortion: quality and rate both fall with QP.
    assert psnrs == sorted(psnrs, reverse=True)
    assert bits == sorted(bits, reverse=True)
    # Near-lossless at QP 0, heavily compressed at QP 48.
    assert psnrs[0] > 50
    assert bits[-1] < bits[0] / 10

    # Closed-loop prediction: inter frames always cost fewer bits than
    # the intra-style first frame at every QP with residual content.
    for qp in QPS[:-1]:
        frames = reports[qp].frames
        assert all(f.bits <= frames[0].bits for f in frames[1:])

    # The SI workload is QP-independent (rate control does not change the
    # Fig. 7 flow).
    for qp in QPS:
        for f in reports[qp].frames:
            assert f.si_counts["SATD_4x4"] == f.macroblocks * 256

    rows = [
        [
            qp,
            f"{reports[qp].mean_psnr():.1f}",
            reports[qp].total_bits(),
            reports[qp].frames[0].bits,
            sum(f.bits for f in reports[qp].frames[1:]),
        ]
        for qp in QPS
    ]
    table = render_table(
        ["QP", "PSNR [dB]", "total bits", "intra-frame bits", "inter-frame bits"],
        rows,
        title="Extension: rate-distortion of the completed TQ + entropy chain",
    )
    save_artifact("extension_ratedistortion.txt", table)
