"""Fig. 2 — Molecule implementations of HT_4x4, DCT_4x4 and SATD_4x4
sharing the same set of Atoms.

The figure's point: "three different SIs can be implemented while sharing
the same set of Atoms".  Regenerated as the shared-atom map of the
library plus the molecule options of the three SIs at increasing atom
counts (parallel / sequential / mixed execution of the same dataflow).
"""

from repro.core import supremum
from repro.reporting import render_table


def compute_sharing(library):
    shared = library.shared_atom_kinds()
    sup = supremum(
        [library.get(n).supremum() for n in ("HT_4x4", "DCT_4x4", "SATD_4x4")],
    )
    return shared, sup


def test_fig02_molecule_sharing(benchmark, save_artifact, h264_library):
    shared, sup = benchmark(compute_sharing, h264_library)

    # Transform and Pack serve all three figure SIs.
    for kind in ("Transform", "Pack"):
        assert {"HT_4x4", "DCT_4x4", "SATD_4x4"} <= set(shared[kind])
    # QuadSub/SATD are SATD_4x4-specific among the three.
    assert "SATD_4x4" in shared["QuadSub"]

    # One atom set implements all three SIs: the supremum of the three
    # SIs' maximal molecules is the union, and every molecule of each SI
    # fits within it.
    for name in ("HT_4x4", "DCT_4x4", "SATD_4x4"):
        for molecule in h264_library.get(name).molecules():
            assert molecule <= sup

    # The minimal molecules of the three SIs overlap pairwise: real
    # sharing, not disjoint hardware.
    minimal = {
        name: h264_library.get(name).minimal_molecule().molecule
        for name in ("HT_4x4", "DCT_4x4", "SATD_4x4")
    }
    for a in minimal.values():
        for b in minimal.values():
            assert not (a & b).is_zero()

    rows = []
    for name in ("HT_4x4", "DCT_4x4", "SATD_4x4"):
        si = h264_library.get(name)
        for impl in si.implementations:
            rows.append([name, impl.label, impl.atoms(), impl.cycles])
    table = render_table(
        ["SI", "molecule", "atoms", "cycles"],
        rows,
        title="Fig. 2: molecule options sharing one atom set",
    )
    save_artifact("fig02_molecule_sharing.txt", table)
