"""Fig. 3 — BB graph for AES with profiling info, SI usages and computed
FC candidates.

Regenerates the whole compile-time pipeline on a *real* AES-128 run:
profile over random plaintexts, reach probabilities, temporal distances,
FDF evaluation, candidate trimming, FC placement, and the DOT rendering
of the annotated BB graph.
"""

from repro.apps.aes import aes_forecast_report
from repro.reporting import render_table


def run_pipeline():
    return aes_forecast_report(runs=8, containers=6, seed=0)


def test_fig03_aes_forecast(benchmark, save_artifact):
    report = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)

    # The hot block is the 9x round loop; profiling must show it.
    assert report.cfg.get("round").exec_count > report.cfg.get("final").exec_count
    # SI usages sit in the round/final/keyexp blocks (circles in Fig. 3).
    assert report.cfg.get("round").si_usages == {"SUBBYTES": 1, "MIXCOL": 1}

    # Candidates exist and precede the SI-using blocks (squares upstream
    # of the circles in Fig. 3).
    assert report.candidates
    for c in report.candidates:
        assert not report.cfg.get(c.block_id).uses_si(c.si_name)
        assert c.expected_executions >= c.required_executions

    # Placement produced at least one FC block the run-time would monitor.
    assert report.annotation.all_points()

    # DOT output carries profiling shades, SI marks and highlights.
    assert "digraph" in report.dot
    assert "shape=box" in report.dot
    assert "SUBBYTESx1" in report.dot

    rows = [
        [
            c.block_id,
            c.si_name,
            round(c.probability, 3),
            round(c.distance, 1),
            round(c.expected_executions, 1),
            round(c.required_executions, 1),
        ]
        for c in sorted(report.candidates, key=lambda c: (c.si_name, c.block_id))
    ]
    table = render_table(
        ["block", "SI", "p", "distance", "expected", "FDF demand"],
        rows,
        title="Fig. 3: AES FC candidates",
    )
    save_artifact("fig03_aes_forecast.txt", table + "\n\n" + report.dot)
