"""Extension bench — lifting the Amdahl ceiling with additional SIs.

Implements the paper's closing future-work sentence: "To overcome this
[Amdahl's law] we will consider additional SIs focusing on different hot
spots."  The MC (half-pel interpolation) and LF (deblocking) hot spots of
Fig. 1 become SIs with auto-generated molecule catalogues; the bench
sweeps the container budget and shows the speed-up ceiling rising from
~3.4x (transform SIs only) to well beyond it.
"""

from repro.apps.h264.extensions import (
    EXTENSION_SI_COUNTS,
    build_extended_library,
    extended_macroblock_cycles,
)
from repro.apps.h264.encoder import LUMA_SI_COUNTS
from repro.core import ForecastedSI, select_greedy
from repro.reporting import render_table

ALL_SIS = ("SATD_4x4", "DCT_4x4", "HT_4x4", "MC_HPEL", "LF_EDGE")


def sweep():
    library = build_extended_library()
    counts = {**LUMA_SI_COUNTS, **EXTENSION_SI_COUNTS}
    requests = [ForecastedSI(library.get(n), counts.get(n, 0)) for n in ALL_SIS]
    results = []
    for budget in range(0, 21, 2):
        selection = select_greedy(library, requests, budget)
        latencies = {}
        for name in ALL_SIS:
            impl = selection.chosen[name]
            latencies[name] = (
                impl.cycles if impl else library.get(name).software_cycles
            )
        total = extended_macroblock_cycles(latencies)
        results.append((budget, selection.containers_used, latencies, total))
    return results


def test_extension_amdahl(benchmark, save_artifact):
    results = benchmark.pedantic(sweep, rounds=2, iterations=1)

    totals = {budget: total for budget, _u, _l, total in results}

    # Budget 0 is still the paper's software baseline (carve-out neutral).
    assert totals[0] == 201_065
    # Monotone improvement with budget.
    series = [totals[b] for b in sorted(totals)]
    assert series == sorted(series, reverse=True)

    # The old catalogue's ceiling was ~3.5x; with the MC/LF SIs the
    # encoder passes 5x.
    best = min(series)
    assert totals[0] / best > 5.0

    # The extension SIs actually get selected at generous budgets.
    _b, _u, latencies, _t = results[-1]
    assert latencies["MC_HPEL"] < 900
    assert latencies["LF_EDGE"] < 400

    rows = [
        [
            budget,
            used,
            lat["SATD_4x4"],
            lat["DCT_4x4"],
            lat["MC_HPEL"],
            lat["LF_EDGE"],
            total,
            f"{totals[0] / total:.2f}x",
        ]
        for budget, used, lat, total in results
    ]
    table = render_table(
        ["#ACs", "used", "SATD", "DCT", "MC", "LF", "cycles/MB", "speed-up"],
        rows,
        title=(
            "Extension: additional hot-spot SIs lift the Amdahl ceiling "
            "(paper future work)"
        ),
    )
    save_artifact("extension_amdahl.txt", table)
