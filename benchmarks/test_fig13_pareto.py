"""Fig. 13 — RISPP SI trade-off: performance vs resources.

Regenerates the per-SI (atoms, cycles) point clouds of Table 2 and their
Pareto-optimal fronts — the highlighted lines the run-time system moves
along ("dynamic trade-off"), which a design-time-fixed ASIP cannot do —
and verifies the run-time selection actually walks these fronts as the
container budget grows.
"""

from repro.core import ForecastedSI, pareto_front_of, tradeoff_points, upgrade_path
from repro.reporting import render_series

FIG13_SIS = ("SATD_4x4", "HT_4x4", "DCT_4x4", "HT_2x2")


def regenerate(library):
    fronts = {}
    clouds = {}
    for name in FIG13_SIS:
        si = library.get(name)
        clouds[name] = tradeoff_points(si)
        fronts[name] = pareto_front_of(si)
    return clouds, fronts


def test_fig13_pareto(benchmark, save_artifact, h264_library):
    clouds, fronts = benchmark(regenerate, h264_library)

    # The x axis spans 0..18 RISPP resources, as plotted.
    all_atoms = [p.atoms for pts in clouds.values() for p in pts]
    assert max(all_atoms) == 18
    assert min(all_atoms) >= 2

    # Every front is strictly improving: more atoms, fewer cycles.
    for name, front in fronts.items():
        for a, b in zip(front, front[1:]):
            assert b.atoms > a.atoms and b.cycles < a.cycles
        # Front endpoints: the minimal and the fastest molecule.
        si = h264_library.get(name)
        assert front[0].cycles == si.minimal_molecule().cycles
        assert front[-1].cycles == si.fastest_molecule().cycles

    # SATD_4x4 offers the richest trade-off (15 molecules, >= 5 Pareto
    # points), matching the densest line in the figure.
    assert len(clouds["SATD_4x4"]) == 15
    assert len(fronts["SATD_4x4"]) >= 5

    # Dynamic trade-off: as the run-time budget grows, the selected
    # molecule's latency walks down the front monotonically.
    requests = [ForecastedSI(h264_library.get("SATD_4x4"), 100)]
    path = upgrade_path(h264_library, requests, 18)
    latencies = [
        r.chosen["SATD_4x4"].cycles if r.chosen["SATD_4x4"] else
        h264_library.get("SATD_4x4").software_cycles
        for r in path
    ]
    assert latencies == sorted(latencies, reverse=True)
    assert latencies[-1] == h264_library.get("SATD_4x4").fastest_molecule().cycles

    series = {
        f"{name} (all molecules)": [(p.atoms, p.cycles) for p in clouds[name]]
        for name in FIG13_SIS
    }
    series.update(
        {
            f"{name} (Pareto front)": [(p.atoms, p.cycles) for p in fronts[name]]
            for name in FIG13_SIS
        }
    )
    art = render_series(
        series,
        title="Fig. 13: SI performance vs RISPP resources",
        x_label="#Atoms",
        y_label="cycles",
    )
    budget_walk = "\n".join(
        f"budget={i:2d} -> SATD_4x4 {lat} cycles" for i, lat in enumerate(latencies)
    )
    save_artifact(
        "fig13_pareto.txt",
        art + "\n\nRun-time budget walk (dynamic trade-off):\n" + budget_walk,
    )
