"""Ablation — greedy vs exhaustive molecule selection.

The run-time system must select molecules on every forecast, so the paper
trades optimality for speed.  This bench quantifies the trade: over the
H.264 library and many random workload weightings, greedy selection must
reach >=95% of the exhaustive optimum's benefit on average (and >=85% in
the worst case) while evaluating orders of magnitude fewer combinations.
"""

import random

from repro.apps.h264 import build_h264_library
from repro.core import ForecastedSI, select_exhaustive, select_greedy
from repro.reporting import render_table

TRIALS = 20


def compare():
    library = build_h264_library()
    rng = random.Random(1234)
    names = ["HT_2x2", "HT_4x4", "DCT_4x4", "SATD_4x4"]
    rows = []
    for trial in range(TRIALS):
        weights = {n: rng.uniform(1, 500) for n in names}
        requests = [ForecastedSI(library.get(n), weights[n]) for n in names]
        budget = rng.randint(2, 14)
        g = select_greedy(library, requests, budget)
        e = select_exhaustive(library, requests, budget)
        rows.append(
            {
                "trial": trial,
                "budget": budget,
                "greedy": g.total_benefit,
                "optimal": e.total_benefit,
                "ratio": (g.total_benefit / e.total_benefit) if e.total_benefit else 1.0,
                "greedy_considered": g.considered,
                "optimal_considered": e.considered,
            }
        )
    return rows


def test_ablation_selection(benchmark, save_artifact):
    rows = benchmark.pedantic(compare, rounds=2, iterations=1)

    ratios = [r["ratio"] for r in rows]
    assert min(ratios) >= 0.85, "greedy must stay near-optimal in the worst case"
    assert sum(ratios) / len(ratios) >= 0.95, "and >=95% on average"
    # Greedy never exceeds the optimum (sanity of the reference).
    assert all(r["ratio"] <= 1.0 + 1e-9 for r in rows)

    # Work saved: exhaustive enumerates the full product of options.
    total_greedy = sum(r["greedy_considered"] for r in rows)
    total_optimal = sum(r["optimal_considered"] for r in rows)
    assert total_optimal > 3 * total_greedy

    table = render_table(
        ["trial", "#ACs", "greedy benefit", "optimal benefit", "ratio",
         "greedy evals", "optimal evals"],
        [
            [
                r["trial"],
                r["budget"],
                round(r["greedy"]),
                round(r["optimal"]),
                f"{r['ratio']:.3f}",
                r["greedy_considered"],
                r["optimal_considered"],
            ]
            for r in rows
        ],
        title="Ablation: greedy vs exhaustive molecule selection",
    )
    save_artifact("ablation_selection.txt", table)
