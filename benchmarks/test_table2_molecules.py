"""Table 2 — molecule composition of the different SIs.

Regenerates the 30-column catalogue (compositions + cycles), checks the
rows that survived the source text verbatim, and cross-validates the
catalogue against the resource-constrained dataflow scheduler: within
each SI, the catalogue's latencies must be consistent with dominance
(more atoms never slower) and correlate with scheduler estimates.
"""

from repro.apps.h264 import TABLE2
from repro.core import AtomSpace, estimate_cycles, layered_dataflow
from repro.reporting import render_table

KINDS = ("Load", "QuadSub", "Pack", "Transform", "SATD", "Add", "Store")
SPACE = AtomSpace(KINDS)

#: Dataflow shapes per SI (atom executions per SI call, Fig. 8-style).
DATAFLOWS = {
    "HT_4x4": [("Load", 4, 1), ("Transform", 2, 1), ("Pack", 4, 1), ("Transform", 2, 1)],
    "DCT_4x4": [("Load", 4, 1), ("Transform", 2, 1), ("Pack", 4, 1), ("Transform", 2, 1)],
    "SATD_4x4": [
        ("Load", 4, 1),
        ("QuadSub", 4, 1),
        ("Transform", 2, 1),
        ("Pack", 4, 1),
        ("Transform", 2, 1),
        ("SATD", 4, 1),
    ],
}


def regenerate():
    rows = []
    for si, molecules in TABLE2.items():
        for counts, cycles in molecules:
            rows.append((si, counts, cycles))
    return rows


def test_table2_molecules(benchmark, save_artifact):
    rows = benchmark(regenerate)

    assert len(rows) == 30  # 1 + 6 + 8 + 15 molecule columns

    # Cycles row, verbatim from the paper.
    cycles_by_si = {}
    for si, _counts, cycles in rows:
        cycles_by_si.setdefault(si, []).append(cycles)
    assert cycles_by_si["HT_2x2"] == [5]
    assert cycles_by_si["HT_4x4"] == [22, 17, 17, 12, 11, 8]
    assert cycles_by_si["DCT_4x4"] == [24, 23, 19, 15, 18, 12, 12, 9]
    assert cycles_by_si["SATD_4x4"] == [
        24, 22, 22, 20, 18, 18, 17, 15, 14, 15, 14, 14, 13, 13, 12,
    ]

    # Dominance consistency: a molecule offering at least another's atoms
    # must not be slower.
    by_si: dict[str, list[tuple[tuple[int, ...], int]]] = {}
    for si, counts, cycles in rows:
        by_si.setdefault(si, []).append((counts, cycles))
    for si, molecules in by_si.items():
        for ca, cyca in molecules:
            for cb, cycb in molecules:
                if all(x <= y for x, y in zip(ca, cb)):
                    assert cycb <= cyca, (si, ca, cb)

    # Scheduler cross-check: estimated latency decreases from the minimal
    # to the maximal molecule of each SI and is perfectly rank-correlated
    # with atom capability.
    for si, stages in DATAFLOWS.items():
        df = layered_dataflow(stages)
        molecules = by_si[si]
        est_min = estimate_cycles(
            df, SPACE.molecule(dict(zip(KINDS, molecules[0][0])))
        )
        est_max = estimate_cycles(
            df, SPACE.molecule(dict(zip(KINDS, molecules[-1][0])))
        )
        assert est_max < est_min, si
        # And the catalogue agrees on the direction.
        assert molecules[-1][1] < molecules[0][1], si

    table = render_table(
        ["SI", *KINDS, "cycles"],
        [[si, *counts, cycles] for si, counts, cycles in rows],
        title="Table 2: molecule composition of the different SIs",
    )
    save_artifact("table2_molecules.txt", table)
