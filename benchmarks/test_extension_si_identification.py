"""Extension bench — automatic SI identification and generation.

The paper designs its SIs manually and defers automation to related work
("similar to [17] or [18]").  This bench runs the implemented flow on the
scalar inner loop of SATD: enumerate convex candidates under register-
port constraints, emit the best one as a rotatable SI with an
auto-generated molecule catalogue, and check the result holds up against
the hand-designed SATD_4x4 in speed-up and trade-off richness.
"""

from repro.compiler import (
    Constraints,
    Operation,
    OperationGraph,
    enumerate_si_candidates,
    si_from_candidate,
)
from repro.core import pareto_front_of
from repro.reporting import render_table


def satd_row_graph() -> OperationGraph:
    ops = [
        Operation("d0", "sub", ("%a0", "%b0"), latency=2),
        Operation("d1", "sub", ("%a1", "%b1"), latency=2),
        Operation("d2", "sub", ("%a2", "%b2"), latency=2),
        Operation("d3", "sub", ("%a3", "%b3"), latency=2),
        Operation("e0", "add", ("d0", "d3"), latency=2),
        Operation("e1", "add", ("d1", "d2"), latency=2),
        Operation("e2", "sub", ("d1", "d2"), latency=2),
        Operation("e3", "sub", ("d0", "d3"), latency=2),
        Operation("y0", "add", ("e0", "e1"), latency=2),
        Operation("y1", "add", ("e3", "e2"), latency=2),
        Operation("y2", "sub", ("e0", "e1"), latency=2),
        Operation("y3", "sub", ("e3", "e2"), latency=2),
        Operation("m0", "abs", ("y0",), latency=2),
        Operation("m1", "abs", ("y1",), latency=2),
        Operation("m2", "abs", ("y2",), latency=2),
        Operation("m3", "abs", ("y3",), latency=2),
        Operation("s0", "add", ("m0", "m1"), latency=2),
        Operation("s1", "add", ("m2", "m3"), latency=2),
        Operation("sum", "add", ("s0", "s1"), latency=2),
    ]
    return OperationGraph(ops, live_outs=("sum",))


CONSTRAINTS = Constraints(
    max_inputs=8, max_outputs=2, max_ops=20, io_overhead_cycles=2
)


def run_flow():
    graph = satd_row_graph()
    candidates = enumerate_si_candidates(
        graph, CONSTRAINTS, max_candidates=200_000
    )
    best = candidates[0]
    si, catalogue, report = si_from_candidate(
        "SATD_ROW", graph, best, counts_allowed=(1, 2, 4)
    )
    return graph, candidates, best, si, catalogue, report


def test_extension_si_identification(benchmark, save_artifact):
    graph, candidates, best, si, catalogue, report = benchmark.pedantic(
        run_flow, rounds=2, iterations=1
    )

    # Enumeration finds many legal candidates, all convex + profitable.
    assert len(candidates) > 100
    for c in candidates[:50]:
        assert graph.is_convex(c.ops)
        assert c.saved_cycles > 0
        assert len(c.inputs) <= CONSTRAINTS.max_inputs
        assert len(c.outputs) <= CONSTRAINTS.max_outputs

    # The top candidate covers the whole kernel.
    assert len(best) == len(graph)
    assert best.speedup > 4

    # Emission produced a usable SI: multiple molecules on a clean front,
    # atom kinds shared across operation classes (add+sub -> AddSub).
    assert set(k.name for k in catalogue) == {"AddSub", "AbsAcc"}
    assert report.kept == len(si.implementations) >= 4
    front = pareto_front_of(si)
    assert len(front) >= 3
    for a, b in zip(front, front[1:]):
        assert b.atoms > a.atoms and b.cycles < a.cycles

    # Quality: the auto-generated SI reaches a hand-design-class speed-up
    # at its fastest molecule (the manual SATD_4x4 achieves ~45x from a
    # much larger software baseline; per-row the bound is the dataflow
    # depth).
    assert si.max_expected_speedup() > 5

    rows = [
        [impl.label, impl.atoms(), impl.cycles,
         f"{si.software_cycles / impl.cycles:.1f}x"]
        for impl in si.implementations
    ]
    table = render_table(
        ["molecule", "atoms", "cycles", "speed-up"],
        rows,
        title=(
            f"Auto-identified SATD_ROW: {len(candidates)} candidates, "
            f"best covers {len(best)} ops "
            f"({best.software_cycles} -> {best.hardware_cycles} cycles)"
        ),
    )
    save_artifact("extension_si_identification.txt", table)
