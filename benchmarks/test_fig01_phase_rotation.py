"""Fig. 1 (dynamic panel) — performance maintenance under phase rotation.

Fig. 1's deeper claim is not just the area formula: RISPP "upholds the
performance of Extensible Processors" although only ~alpha x GE_max of
hardware exists, because the unused hardware is prepared for the next hot
spot *while the current one executes*.  This bench simulates several
frames of the ME -> MC -> TQ -> LF sequence on the behavioural runtime
and verifies:

* steady-state hardware fractions near 1 for every phase (performance
  maintained) at roughly half the dedicated silicon;
* the one-phase-lookahead forecasts are what make it work — without
  them the rotations lag the phases forever.
"""

from repro.apps.h264.phases import (
    PHASES,
    phase_area_comparison,
    run_phase_rotation,
)
from repro.reporting import render_table

FRAMES = 3
CONTAINERS = 8


def simulate():
    with_la = run_phase_rotation(
        frames=FRAMES, containers=CONTAINERS, lookahead=True
    )
    without_la = run_phase_rotation(
        frames=FRAMES, containers=CONTAINERS, lookahead=False
    )
    area = phase_area_comparison(containers=CONTAINERS)
    return with_la, without_la, area


def test_fig01_phase_rotation(benchmark, save_artifact):
    with_la, without_la, area = benchmark.pedantic(
        simulate, rounds=2, iterations=1
    )

    # Steady state (after the cold first frame): every phase runs
    # predominantly in hardware.
    for name, _share, _workload in PHASES:
        assert with_la.steady_state_hw_fraction(name) > 0.75, name

    # Per-frame SI time converges and stays converged.
    steady = [with_la.frame_si_cycles(f) for f in range(1, FRAMES)]
    assert len(set(steady)) == 1
    assert steady[0] < with_la.frame_si_cycles(0)

    # Rotation-in-Advance is the enabler: dropping the lookahead costs
    # more than 2x in steady-state SI time.
    lag = without_la.frame_si_cycles(FRAMES - 1)
    assert lag > 2 * steady[0]

    # The area story: the container bank is roughly half the dedicated
    # per-phase silicon ("requires only the silicon area for the largest
    # hot spot plus some addition").
    assert area.rispp_slices < area.extensible_slices
    assert 30 <= area.saving_pct <= 70
    assert area.rispp_slices >= max(area.per_phase_slices.values())

    rows = []
    for name, share, workload in PHASES:
        rows.append(
            [
                name,
                f"{share * 100:.0f}%",
                sum(workload.values()),
                f"{100 * with_la.steady_state_hw_fraction(name):.1f}%",
                area.per_phase_slices[name],
            ]
        )
    table = render_table(
        ["phase", "time share", "SI execs/frame", "steady HW fraction",
         "dedicated slices"],
        rows,
        title=(
            f"Fig. 1 dynamics: {FRAMES} frames, {CONTAINERS} containers "
            f"({area.rispp_slices} slices vs {area.extensible_slices} dedicated, "
            f"{area.saving_pct:.1f}% saving); "
            f"steady SI time {steady[0]:,} cyc/frame with lookahead vs "
            f"{lag:,} without"
        ),
    )
    save_artifact("fig01_phase_rotation.txt", table)
