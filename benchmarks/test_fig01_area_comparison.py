"""Fig. 1 — Extensible processor vs RISPP hardware requirements.

Regenerates the area comparison over the H.264 phase profile (ME/MC/TQ/LF)
and the paper's GE-saving formula ``(GE_total - alpha*GE_max)*100/GE_total``,
including the alpha trade-off the paper introduces.
"""

from repro.hardware import (
    H264_PHASES,
    AreaComparison,
    extensible_processor_area,
    ge_max,
    ge_saving_pct,
    max_alpha_for_constraint,
    rispp_area,
)
from repro.reporting import render_table


def build_comparison(alphas):
    return [AreaComparison.build(list(H264_PHASES), a) for a in alphas]


def test_fig01_area_comparison(benchmark, save_artifact):
    alphas = [1.0, 1.25, 1.5, 2.0]
    comparisons = benchmark(build_comparison, alphas)

    phases = list(H264_PHASES)
    total = extensible_processor_area(phases)
    biggest = ge_max(phases)

    # -- the paper's stated facts ------------------------------------------
    mc = next(p for p in phases if p.name == "MC")
    me = next(p for p in phases if p.name == "ME")
    assert mc.gate_equivalents == biggest, "MC requires the biggest area"
    assert mc.time_pct == 17.0, "MC consumes only 17% of processing time"
    assert me.gate_equivalents == min(p.gate_equivalents for p in phases)
    assert me.time_pct == max(p.time_pct for p in phases)

    # -- RISPP area and saving ---------------------------------------------
    for cmp in comparisons:
        assert cmp.rispp_ge == cmp.alpha * biggest
        assert cmp.saving_pct == ge_saving_pct(phases, cmp.alpha)
        if cmp.alpha <= 2.0:
            assert cmp.rispp_ge < total, "RISPP needs less area than the ASIP"
    # At alpha = 1.25 the saving is substantial (>40% on this profile).
    assert ge_saving_pct(phases, 1.25) > 40

    # -- feasibility constraint ---------------------------------------------
    constraint = rispp_area(phases, 1.5)
    assert max_alpha_for_constraint(phases, constraint) == 1.5

    rows = [
        [p.name, p.time_pct, p.gate_equivalents] for p in phases
    ]
    table1 = render_table(
        ["phase", "time %", "GE (extensible)"], rows, title="Fig. 1 phase profile"
    )
    rows2 = [
        [c.alpha, c.extensible_ge, round(c.rispp_ge), round(c.saving_pct, 1)]
        for c in comparisons
    ]
    table2 = render_table(
        ["alpha", "GE extensible", "GE RISPP", "saving %"],
        rows2,
        title="Fig. 1 RISPP vs extensible processor",
    )
    save_artifact("fig01_area_comparison.txt", table1 + "\n\n" + table2)
