"""Extension bench — the energy trade (paper §1/§2: MIPS/mW).

The paper motivates RISPP with the energy wasted by dedicated SI hardware
that leaks while unused, and prices rotations through the FDF offset
(``offset = α·E_rot/(T_sw − T_hw)`` is exactly an energy break-even).
This bench runs the energy-instrumented runtime over a measured workload,
then extrapolates per-macroblock costs to find the *break-even point*:
after how many macroblocks has RISPP's one-off rotation energy paid for
itself against the dedicated processor's larger leaking/toggling fabric?

A second finding falls out of the model: the smaller, slower molecules
RISPP selects under a tight budget toggle far fewer slices per execution
than the ASIP's fastest data paths — energy per SI execution is *lower*
on RISPP even before leakage enters.
"""

from repro.apps.h264 import CORE_OVERHEAD_CYCLES, LUMA_SI_COUNTS, build_h264_library
from repro.baselines import ExtensibleProcessor
from repro.core import ForecastedSI
from repro.hardware import CONTAINER_SLICES, EnergyModel
from repro.reporting import render_table
from repro.runtime import RisppRuntime

MEASURED_MACROBLOCKS = 30
CONTAINERS = 6
CIF_FRAME_MACROBLOCKS = 396  # 352x288


def measure():
    model = EnergyModel()
    library = build_h264_library()

    # --- RISPP: rotate once, then per-MB costs are steady. ---
    rt = RisppRuntime(library, CONTAINERS, core_mhz=100.0, energy_model=model)
    now = 0
    for si, count in LUMA_SI_COUNTS.items():
        rt.forecast(si, now, expected=count * MEASURED_MACROBLOCKS)
    now = 600_000
    start = now
    for _mb in range(MEASURED_MACROBLOCKS):
        for si, count in LUMA_SI_COUNTS.items():
            for _ in range(count):
                now += rt.execute_si(si, now)
        now += CORE_OVERHEAD_CYCLES
    window = now - start
    cycles_per_mb = window / MEASURED_MACROBLOCKS
    rispp_exec_per_mb = rt.stats.execution_energy_nj / MEASURED_MACROBLOCKS
    rispp_static_per_mb = model.static_energy_nj(
        CONTAINER_SLICES * CONTAINERS, round(cycles_per_mb)
    )
    rotation_energy = rt.stats.rotation_energy_nj

    # --- ASIP: dedicated fastest data paths, no rotations. ---
    workload = [
        ForecastedSI(library.get(si), count)
        for si, count in LUMA_SI_COUNTS.items()
    ]
    asip = ExtensibleProcessor.design(library, workload, atom_budget=100)
    asip_slices = 0
    asip_exec_per_mb = 0.0
    for si, count in LUMA_SI_COUNTS.items():
        impl = asip.chosen[si]
        slices = sum(
            library.catalogue.get(k).slices * impl.molecule.count(k)
            for k in impl.molecule.kinds_used()
        )
        asip_slices += slices
        asip_exec_per_mb += count * model.execution_energy_nj(slices, impl.cycles)
    asip_static_per_mb = model.static_energy_nj(asip_slices, round(cycles_per_mb))

    return {
        "model": model,
        "rt": rt,
        "rotation_energy": rotation_energy,
        "rispp_per_mb": rispp_exec_per_mb + rispp_static_per_mb,
        "rispp_exec_per_mb": rispp_exec_per_mb,
        "asip_per_mb": asip_exec_per_mb + asip_static_per_mb,
        "asip_exec_per_mb": asip_exec_per_mb,
        "asip_slices": asip_slices,
        "cycles_per_mb": cycles_per_mb,
    }


def test_extension_energy(benchmark, save_artifact):
    m = benchmark.pedantic(measure, rounds=2, iterations=1)

    rt = m["rt"]
    assert rt.stats.rotation_energy_nj > 0
    assert rt.stats.hw_fraction() == 1.0

    # Per-execution energy: RISPP's tight-budget molecules toggle fewer
    # slices than the ASIP's fastest data paths.
    assert m["rispp_exec_per_mb"] < m["asip_exec_per_mb"]

    # Break-even: the per-MB advantage amortises the rotation energy
    # within a fraction of one CIF frame.
    advantage_per_mb = m["asip_per_mb"] - m["rispp_per_mb"]
    assert advantage_per_mb > 0
    break_even = m["rotation_energy"] / advantage_per_mb
    assert break_even < CIF_FRAME_MACROBLOCKS

    # At ten CIF frames the totals separate clearly.
    n = 10 * CIF_FRAME_MACROBLOCKS
    rispp_total = m["rotation_energy"] + n * m["rispp_per_mb"]
    asip_total = n * m["asip_per_mb"]
    assert rispp_total < asip_total

    rows = [
        [
            "RISPP (6 containers)",
            CONTAINER_SLICES * CONTAINERS,
            round(m["rispp_per_mb"]),
            round(m["rotation_energy"]),
            round(rispp_total),
        ],
        [
            "ASIP (dedicated, fastest molecules)",
            m["asip_slices"],
            round(m["asip_per_mb"]),
            0,
            round(asip_total),
        ],
    ]
    table = render_table(
        ["platform", "slices", "energy/MB [nJ]", "rotation [nJ]",
         "total @10 CIF frames [nJ]"],
        rows,
        title=(
            f"Extension: fabric energy; rotation break-even after "
            f"{break_even:.0f} macroblocks "
            f"({break_even / CIF_FRAME_MACROBLOCKS:.2f} CIF frames)"
        ),
    )
    save_artifact("extension_energy.txt", table)
