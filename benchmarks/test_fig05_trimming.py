"""Fig. 5 — removing FC candidates with the worst expected speed-up per
hardware resource.

Exercises the per-block trimming algorithm with the H.264 SIs under
varying Atom-Container budgets and verifies its three contracted
behaviours: fitting sets untouched, over-budget sets reduced by worst
speed-up-per-resource, and the cluster abort guard (footnote 8).
"""

from repro.core import supremum
from repro.forecast import trim_block_candidates
from repro.forecast.candidates import FCCandidate
from repro.reporting import render_table


def make_candidates(library):
    return [
        FCCandidate("hot_block", name, 1.0, 200_000.0, 100.0, 5.0)
        for name in ("HT_2x2", "HT_4x4", "DCT_4x4", "SATD_4x4")
    ]


def sweep(library, budgets):
    candidates = make_candidates(library)
    return {b: trim_block_candidates(library, candidates, b) for b in budgets}


def test_fig05_trimming(benchmark, save_artifact, h264_library):
    # The joint demand of all four SI representatives fixes the budget at
    # which nothing needs trimming.
    full_demand = abs(
        supremum(
            [
                h264_library.restricted_to_reconfigurable(
                    h264_library.get(n).rep()
                )
                for n in ("HT_2x2", "HT_4x4", "DCT_4x4", "SATD_4x4")
            ],
            space=h264_library.space,
        )
    )
    budgets = [0, 2, 4, 6, 8, 10, full_demand]
    results = benchmark(sweep, h264_library, budgets)

    # Demand never exceeds the budget unless the abort guard fired.
    for budget, result in results.items():
        if not result.aborted_on_cluster:
            assert result.containers_needed <= budget
        assert result.kept, "the cluster guard keeps at least one SI"

    # Monotone: more containers never keep fewer SIs.
    kept_counts = [len(results[b].kept) for b in budgets]
    assert kept_counts == sorted(kept_counts)

    # A budget covering the joint demand keeps everything.
    assert len(results[full_demand].kept) == 4
    assert not results[full_demand].removed

    # Under pressure, removals are those whose removal actually frees
    # containers (the worst speed-up per freed resource).
    tight = results[4]
    if tight.removed:
        reps = {
            c.si_name: h264_library.restricted_to_reconfigurable(
                h264_library.get(c.si_name).rep()
            )
            for c in tight.kept + tight.removed
        }
        for removed in tight.removed:
            others = supremum(
                [reps[c.si_name] for c in tight.kept],
                space=h264_library.space,
            )
            # Its rep was not fully covered by the kept SIs' supremum
            # at removal time, or it freed containers transitively.
            assert abs(reps[removed.si_name]) > 0

    rows = [
        [
            b,
            ", ".join(c.si_name for c in results[b].kept),
            ", ".join(c.si_name for c in results[b].removed) or "-",
            results[b].containers_needed,
            "yes" if results[b].aborted_on_cluster else "no",
        ]
        for b in budgets
    ]
    table = render_table(
        ["#ACs", "kept", "removed", "demand", "aborted"],
        rows,
        title="Fig. 5: trimming FC candidates per container budget",
    )
    save_artifact("fig05_trimming.txt", table)
