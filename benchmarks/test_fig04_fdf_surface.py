"""Fig. 4 — the Forecast Decision Function surface.

Regenerates the published plot: minimum SI-usage demand over the temporal
distance t/T_rot in [0.1, 100] (log scale) for usage probabilities 100%,
70% and 40%, and checks the bathtub shape (wall below one rotation time,
flat valley up to 10 rotation times, rise beyond, everything scaled up at
lower probability).
"""

import math

from repro.forecast import ForecastDecisionFunction
from repro.reporting import render_surface

#: The figure's log-spaced x axis, as printed on the plot.
X_TICKS = [
    0.1, 0.2, 0.3, 0.4, 0.6, 1.0, 1.6, 2.5, 4.0, 6.3,
    10.0, 15.8, 25.1, 39.8, 63.1, 100.0,
]
PROBABILITIES = [1.0, 0.7, 0.4]


def build_fdf() -> ForecastDecisionFunction:
    # SATD_4x4-flavoured timing: T_sw=544, T_hw=24, offset ~ a few
    # executions at alpha=1.
    return ForecastDecisionFunction(
        t_rot=85_000.0,
        t_sw=544.0,
        t_hw=24.0,
        rotation_energy=2_000.0,
        alpha=1.0,
    )


def compute_surface():
    fdf = build_fdf()
    distances = [x * fdf.t_rot for x in X_TICKS]
    return fdf, fdf.surface(distances, PROBABILITIES)


def test_fig04_fdf_surface(benchmark, save_artifact):
    fdf, surface = benchmark(compute_surface)

    assert len(surface) == 3 and all(len(row) == len(X_TICKS) for row in surface)

    # Left wall: demand decreasing towards t = T_rot.
    for row in surface:
        wall = row[: X_TICKS.index(1.0) + 1]
        assert wall == sorted(wall, reverse=True)
        assert wall[0] > 100  # hundreds of executions demanded at 0.1 T_rot

    # Valley: between 1 and 10 T_rot only the offset is demanded.
    i1, i10 = X_TICKS.index(1.0), X_TICKS.index(10.0)
    for row in surface:
        valley = row[i1 : i10 + 1]
        assert max(valley) - min(valley) < 1e-9

    # Right rise: demand increasing beyond 10 T_rot (blocking ACs too long).
    for row in surface:
        rise = row[i10:]
        assert rise == sorted(rise)
        assert rise[-1] > rise[0]

    # Probability sheets: lower probability demands strictly more
    # everywhere outside the valley.
    for j, x in enumerate(X_TICKS):
        if 1.0 <= x <= 10.0:
            continue
        assert surface[2][j] > surface[1][j] > surface[0][j]

    # The plotted value range matches the figure's 0..500 z axis at the
    # published operating points.
    assert 400 <= surface[0][0] <= 600  # p=100%, t=0.1 T_rot

    rows = [f"p={int(p * 100)}%" for p in PROBABILITIES]
    cols = [f"{x:g}" for x in X_TICKS]
    art = render_surface(
        surface, rows, cols, title="Fig. 4: FDF demand over t/T_rot (log axis)"
    )
    lines = [art, "", "numeric rows (executions demanded):"]
    for label, row in zip(rows, surface):
        lines.append(
            label + ": " + " ".join(f"{v:7.1f}" for v in row)
        )
    save_artifact("fig04_fdf_surface.txt", "\n".join(lines))
