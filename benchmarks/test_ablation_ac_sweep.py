"""Ablation — Atom-Container budget sweep over the whole encoder.

Extends Fig. 12 beyond the published 4/5/6-Atom points: sweep the
container budget from 0 to 18, let molecule selection pick the best joint
configuration for the Fig. 7 workload at each budget, and measure the
per-macroblock cycle count.  Shows the full diminishing-returns curve
(the Amdahl ceiling the paper attributes to the non-SI code).
"""

from repro.apps.h264 import (
    LUMA_SI_COUNTS,
    CHROMA_SI_COUNTS,
    build_h264_library,
    macroblock_cycles,
)
from repro.core import ForecastedSI, select_greedy
from repro.reporting import render_table

SIS = ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")


def workload_counts():
    counts = dict(LUMA_SI_COUNTS)
    for name, n in CHROMA_SI_COUNTS.items():
        counts[name] = counts.get(name, 0) + n
    return counts


def sweep():
    library = build_h264_library()
    counts = workload_counts()
    requests = [
        ForecastedSI(library.get(n), counts.get(n, 0)) for n in SIS
    ]
    results = []
    for budget in range(0, 19):
        selection = select_greedy(library, requests, budget)
        latencies = {}
        for name in SIS:
            impl = selection.chosen[name]
            latencies[name] = (
                impl.cycles if impl else library.get(name).software_cycles
            )
        # Fig. 12 calibration covers the luma pipeline.
        total = macroblock_cycles(
            {k: latencies[k] for k in ("SATD_4x4", "DCT_4x4", "HT_4x4", "HT_2x2")}
        )
        results.append((budget, selection.containers_used, latencies, total))
    return results


def test_ablation_ac_sweep(benchmark, save_artifact):
    results = benchmark.pedantic(sweep, rounds=2, iterations=1)

    totals = [total for _b, _u, _l, total in results]
    # Monotone: more containers never slow the encoder down.
    assert totals == sorted(totals, reverse=True)
    # Budget 0 is the software baseline.
    assert totals[0] == 201_065
    # The big jump happens once the minimal SATD molecule fits; after
    # that, Amdahl limits the gains (<10% total from 4 to 18 containers).
    assert totals[4] < totals[0] / 3
    assert (totals[4] - totals[18]) / totals[4] < 0.10
    # Containers used never exceed the budget.
    for budget, used, _l, _t in results:
        assert used <= budget

    table = render_table(
        ["#ACs", "used", "SATD", "DCT", "HT4", "HT2", "cycles/MB", "speed-up"],
        [
            [
                budget,
                used,
                lat["SATD_4x4"],
                lat["DCT_4x4"],
                lat["HT_4x4"],
                lat["HT_2x2"],
                total,
                f"{totals[0] / total:.2f}x",
            ]
            for budget, used, lat, total in results
        ],
        title="Ablation: encoder performance vs Atom-Container budget",
    )
    save_artifact("ablation_ac_sweep.txt", table)
