"""Ablation — forecasting ("Rotation in Advance") vs rotate-on-demand.

The paper's central run-time claim: forecasts let rotations start before
the hot spot arrives, so the SI is (at least partially) in hardware when
first needed.  This bench runs the same workload — a warm-up phase
followed by a burst of SATD_4x4 executions — through two managers, one
honouring a forecast fired at the start of the warm-up, one rotating only
on first use, and compares cycles spent in SIs.
"""

from repro.apps.h264 import build_h264_library
from repro.reporting import render_table
from repro.runtime import RisppRuntime

WARMUP_CYCLES = 600_000  # covers the four rotations of the minimal molecule
BURST = 1500  # long enough that rotate-on-demand converges to hardware mid-burst


def run(forecasting: bool):
    library = build_h264_library()
    rt = RisppRuntime(library, 6, core_mhz=100.0, forecasting=forecasting)
    now = 0
    if forecasting:
        rt.forecast("SATD_4x4", now, expected=BURST)
    now += WARMUP_CYCLES
    total = 0
    for _ in range(BURST):
        cycles = rt.execute_si("SATD_4x4", now)
        total += cycles
        now += cycles
    return rt, total


def compare():
    rt_fc, cycles_fc = run(True)
    rt_od, cycles_od = run(False)
    return rt_fc, cycles_fc, rt_od, cycles_od


def test_ablation_forecast(benchmark, save_artifact):
    rt_fc, cycles_fc, rt_od, cycles_od = benchmark.pedantic(
        compare, rounds=2, iterations=1
    )

    # With forecasting the whole burst runs in hardware.
    assert rt_fc.stats.sw_executions == 0
    assert rt_fc.stats.hw_executions == BURST
    # Rotate-on-demand pays a software-execution penalty while the
    # rotation catches up, then converges to hardware too.
    assert rt_od.stats.sw_executions > 0
    assert rt_od.stats.hw_executions > 0

    # Forecasting wins end to end.
    assert cycles_fc < cycles_od
    speedup = cycles_od / cycles_fc
    assert speedup > 1.5

    # Both issue the same rotations; only the *timing* differs.
    assert rt_fc.stats.rotations_requested == rt_od.stats.rotations_requested

    table = render_table(
        ["manager", "SI cycles", "SW execs", "HW execs", "rotations"],
        [
            [
                "forecasting (Rotation in Advance)",
                cycles_fc,
                rt_fc.stats.sw_executions,
                rt_fc.stats.hw_executions,
                rt_fc.stats.rotations_requested,
            ],
            [
                "rotate-on-demand",
                cycles_od,
                rt_od.stats.sw_executions,
                rt_od.stats.hw_executions,
                rt_od.stats.rotations_requested,
            ],
        ],
        title=(
            f"Ablation: forecasting vs rotate-on-demand "
            f"({BURST} SATD_4x4 executions after {WARMUP_CYCLES} warm-up cycles; "
            f"speed-up {speedup:.2f}x)"
        ),
    )
    save_artifact("ablation_forecast.txt", table)
