"""Fig. 11 — SI execution time for different amounts of RISPP resources.

Regenerates the nine published points (SATD_4x4 / DCT_4x4 / HT_4x4 under
Opt. SW / 4 / 5 / 6 Atoms) from the molecule catalogue and the named
platform configurations, matching the paper exactly, and reproduces the
">22x faster than optimised software" claim.
"""

from repro.apps.h264 import REFERENCE_CONFIGS, si_cycles_for_config
from repro.reporting import render_bars, render_table

#: The figure's data, as read from the paper (log-scale bar chart).
PAPER_FIG11 = {
    "SATD_4x4": {"Opt. SW": 544, "4 Atoms": 24, "5 Atoms": 20, "6 Atoms": 18},
    "DCT_4x4": {"Opt. SW": 488, "4 Atoms": 24, "5 Atoms": 19, "6 Atoms": 15},
    "HT_4x4": {"Opt. SW": 298, "4 Atoms": 22, "5 Atoms": 22, "6 Atoms": 17},
}


def regenerate(library):
    return {
        si: {
            config: si_cycles_for_config(library, si, config)
            for config in REFERENCE_CONFIGS
        }
        for si in PAPER_FIG11
    }


def test_fig11_si_cycles(benchmark, save_artifact, h264_library):
    measured = benchmark(regenerate, h264_library)

    # Every one of the nine published points reproduces exactly.
    for si, series in PAPER_FIG11.items():
        for config, cycles in series.items():
            assert measured[si][config] == cycles, (si, config)

    # ">22 times faster than the optimized software implementation":
    # every SI's fastest catalogue molecule clears 22x, and the published
    # configurations already reach >22x for SATD/DCT.
    for si in PAPER_FIG11:
        assert h264_library.get(si).max_expected_speedup() > 22
    assert measured["SATD_4x4"]["Opt. SW"] / measured["SATD_4x4"]["4 Atoms"] > 22
    assert measured["DCT_4x4"]["Opt. SW"] / measured["DCT_4x4"]["6 Atoms"] > 22

    # More atoms never slow any SI down.
    order = ["4 Atoms", "5 Atoms", "6 Atoms"]
    for si in PAPER_FIG11:
        series = [measured[si][c] for c in order]
        assert series == sorted(series, reverse=True) or series == sorted(
            series, reverse=True
        )

    rows = [
        [si, *(measured[si][c] for c in REFERENCE_CONFIGS)]
        for si in PAPER_FIG11
    ]
    table = render_table(
        ["SI", *REFERENCE_CONFIGS.keys()],
        rows,
        title="Fig. 11: SI execution time [cycles] per RISPP resource configuration",
    )
    charts = [
        render_bars(
            {c: measured[si][c] for c in REFERENCE_CONFIGS},
            title=f"{si} (log scale)",
            log_scale=True,
            unit=" cyc",
        )
        for si in PAPER_FIG11
    ]
    save_artifact("fig11_si_cycles.txt", table + "\n\n" + "\n\n".join(charts))
