"""Ablation — Atom replacement policies.

Two SIs with disjoint atom working sets alternate in phases while the
fabric only holds one working set at a time.  A policy that evicts the
least-recently-used atoms (LRU) keeps the *active* phase's atoms loaded;
the anti-policy (MRU) tears down what was just rotated in.  The bench
measures end-to-end SI cycles and rotation counts per policy.
"""

from repro.apps.h264 import build_h264_library
from repro.reporting import render_table
from repro.runtime import HighestIdPolicy, LRUPolicy, MRUPolicy, RisppRuntime

PHASES = 6
EXECS_PER_PHASE = 120
GAP = 500_000  # between phases: enough for the rotations to land


def run(policy):
    library = build_h264_library()
    rt = RisppRuntime(library, 4, core_mhz=100.0, policy=policy)
    now = 0
    total = 0
    sis = ["SATD_4x4", "HT_4x4"]
    for phase in range(PHASES):
        si = sis[phase % 2]
        other = sis[(phase + 1) % 2]
        rt.forecast_end(other, now)
        rt.forecast(si, now, expected=EXECS_PER_PHASE)
        now += GAP
        for _ in range(EXECS_PER_PHASE):
            cycles = rt.execute_si(si, now)
            total += cycles
            now += cycles
    return rt, total


def compare():
    return {
        "LRU": run(LRUPolicy()),
        "MRU": run(MRUPolicy()),
        "highest-id": run(HighestIdPolicy()),
    }


def test_ablation_replacement(benchmark, save_artifact):
    results = benchmark.pedantic(compare, rounds=2, iterations=1)

    cycles = {name: total for name, (_rt, total) in results.items()}
    stats = {name: rt.stats for name, (rt, _t) in results.items()}

    # Every policy eventually serves most executions in hardware.
    for name, s in stats.items():
        assert s.hw_executions > 0, name

    # LRU never loses to MRU on this phase-alternating workload.
    assert cycles["LRU"] <= cycles["MRU"]
    # And it needs at most as many rotations.
    assert (
        stats["LRU"].rotations_requested <= stats["MRU"].rotations_requested
    )

    table = render_table(
        ["policy", "SI cycles", "rotations", "SW execs", "HW execs", "HW fraction"],
        [
            [
                name,
                cycles[name],
                stats[name].rotations_requested,
                stats[name].sw_executions,
                stats[name].hw_executions,
                f"{100 * stats[name].hw_fraction():.1f}%",
            ]
            for name in results
        ],
        title=(
            f"Ablation: replacement policies over {PHASES} alternating phases "
            f"({EXECS_PER_PHASE} executions each, 4 containers)"
        ),
    )
    save_artifact("ablation_replacement.txt", table)
