"""Table 1 + Fig. 10 — hardware implementation of the individual Atoms.

Recomputes every Table 1 row from the model (utilization from the
1024-slice Atom Container, rotation time from the bitstream size over the
calibrated SelectMap rate) and checks the Fig. 10 prototype geometry
(four ACs of 4 CLB columns / 1024 slices / 2048 LUTs).
"""

import pytest

from repro.apps.h264 import build_h264_catalogue
from repro.hardware import (
    CONTAINER_CLB_COLUMNS,
    CONTAINER_LUTS,
    CONTAINER_SLICES,
    PROTOTYPE_CONTAINERS,
    SELECTMAP_BYTES_PER_US,
    TABLE1_SPECS,
    Fabric,
    ReconfigurationPort,
    average_rotation_us,
)
from repro.reporting import render_table

PAPER_ROWS = {
    #            slices luts  bitstream  rot_us
    "Transform": (517, 1034, 59_353, 857.63),
    "SATD": (407, 808, 58_141, 840.11),
    "Pack": (406, 812, 65_713, 949.53),
    "QuadSub": (352, 700, 58_745, 848.84),
}


def recompute():
    rows = {}
    for name, spec in TABLE1_SPECS.items():
        rows[name] = (
            spec.slices,
            spec.luts,
            spec.utilization,
            spec.bitstream_bytes,
            spec.rotation_time_us(),
        )
    return rows


def test_table1_atoms(benchmark, save_artifact):
    rows = benchmark(recompute)

    for name, (slices, luts, util, bits, rot_us) in rows.items():
        p_slices, p_luts, p_bits, p_rot = PAPER_ROWS[name]
        assert slices == p_slices and luts == p_luts and bits == p_bits
        # Modelled rotation time within 0.1% of the published figure.
        assert rot_us == pytest.approx(p_rot, rel=1e-3)
        # Utilization: slices over the 1024-slice container.
        assert util == pytest.approx(slices / CONTAINER_SLICES)
        assert luts <= CONTAINER_LUTS

    # Pack's BlockRAM row inflates its bitstream although its logic
    # utilization is moderate (paper's explicit remark).
    assert rows["Pack"][3] == max(r[3] for r in rows.values())
    assert rows["Pack"][2] < rows["Transform"][2]

    # "The rotation time is in the range of milliseconds."
    assert 0.5 <= average_rotation_us() / 1000 <= 1.5

    # Fig. 10 prototype: 4 ACs, rotation latency in cycles at 100 MHz.
    catalogue = build_h264_catalogue()
    fabric = Fabric(catalogue, PROTOTYPE_CONTAINERS)
    assert len(fabric) == 4
    port = ReconfigurationPort(catalogue, core_mhz=100.0)
    for name, (_, _, _, _, rot_us) in rows.items():
        assert port.rotation_cycles(name) == pytest.approx(rot_us * 100.0, rel=1e-3)

    table = render_table(
        ["Atom", "# Slices", "# LUTs", "Utilization", "Bitstream [B]",
         "Rotation [us] (model)", "Rotation [us] (paper)"],
        [
            [
                name,
                r[0],
                r[1],
                f"{100 * r[2]:.1f}%",
                r[3],
                round(r[4], 2),
                PAPER_ROWS[name][3],
            ]
            for name, r in rows.items()
        ],
        title=(
            "Table 1: atoms on XC2V3000-6 "
            f"(AC = {CONTAINER_CLB_COLUMNS} CLB columns, {CONTAINER_SLICES} slices; "
            f"SelectMap {SELECTMAP_BYTES_PER_US:.1f} B/us)"
        ),
    )
    save_artifact("table1_atoms.txt", table)
