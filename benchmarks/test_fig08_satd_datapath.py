"""Fig. 8 / Fig. 9 — the SATD_4x4 data path from Atoms and the shared
Transform butterfly.

Verifies (a) functional bit-exactness of the Atom-composed SATD_4x4
against the reference, (b) the stated atom-execution structure
(QuadSub -> Transform -> Pack -> Transform -> SATD; 4 executions each),
and (c) that the resource-constrained dataflow scheduler reproduces the
spatial/temporal molecule trade-off the figure illustrates.
"""

import numpy as np

from repro.apps.h264 import AtomExecutionCounter, satd_4x4, si_satd_4x4
from repro.core import AtomSpace, estimate_cycles, layered_dataflow
from repro.reporting import render_table

SPACE = AtomSpace(["QuadSub", "Pack", "Transform", "SATD"])


def satd_dataflow():
    """The Fig. 8 stages with their per-SI execution counts."""
    return layered_dataflow(
        [
            ("QuadSub", 4, 1),
            ("Transform", 2, 1),  # row pass: 2 packed executions
            ("Pack", 4, 1),
            ("Transform", 2, 1),  # column pass
            ("SATD", 4, 1),
        ]
    )


def run_functional(n):
    rng = np.random.default_rng(42)
    checks = []
    for _ in range(n):
        a = rng.integers(0, 256, size=(4, 4))
        b = rng.integers(0, 256, size=(4, 4))
        counter = AtomExecutionCounter()
        checks.append((si_satd_4x4(a, b, counter), satd_4x4(a, b), counter.counts))
    return checks


def test_fig08_satd_datapath(benchmark, save_artifact):
    checks = benchmark(run_functional, 20)

    for got, want, counts in checks:
        assert got == want, "Atom-composed SATD must be bit-exact"
        assert counts == {"QuadSub": 4, "Transform": 4, "Pack": 4, "SATD": 4}

    # Scheduler: more atom instances trade area for latency monotonically.
    df = satd_dataflow()
    molecules = {
        "1 of each": SPACE.molecule({"QuadSub": 1, "Pack": 1, "Transform": 1, "SATD": 1}),
        "2 of each": SPACE.molecule({"QuadSub": 2, "Pack": 2, "Transform": 2, "SATD": 2}),
        "4 of each": SPACE.molecule({"QuadSub": 4, "Pack": 4, "Transform": 4, "SATD": 4}),
    }
    latencies = {
        name: estimate_cycles(df, m) for name, m in molecules.items()
    }
    assert latencies["1 of each"] > latencies["2 of each"] >= latencies["4 of each"]
    # Fully spatial execution reaches the dataflow's critical path.
    assert latencies["4 of each"] == df.critical_path_cycles()

    rows = [
        [name, abs(m), latencies[name]]
        for name, m in molecules.items()
    ]
    table = render_table(
        ["molecule", "atoms", "scheduled cycles"],
        rows,
        title="Fig. 8: SATD_4x4 spatial/temporal trade-off (list scheduler)",
    )
    save_artifact("fig08_satd_datapath.txt", table)
