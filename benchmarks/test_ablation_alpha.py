"""Ablation — the alpha trade-off factor (paper §2 and §4.1).

Alpha appears twice in the paper: scaling the FDF's energy break-even
offset (energy efficiency vs speed-up) and scaling the RISPP area budget
``alpha x GE_max``.  This bench sweeps alpha and verifies both effects:
higher alpha makes forecasts more conservative (no more candidates, often
fewer) and costs more area (smaller GE saving).
"""

from repro.apps.aes import aes_forecast_report
from repro.forecast import rotation_offset
from repro.hardware import H264_PHASES, ge_saving_pct, rispp_area
from repro.reporting import render_table

ALPHAS = [0.25, 0.5, 1.0, 2.0, 4.0]


def sweep():
    rows = []
    for alpha in ALPHAS:
        report = aes_forecast_report(runs=6, containers=6, alpha=alpha, seed=0)
        rows.append(
            {
                "alpha": alpha,
                "candidates": len(report.candidates),
                "fc_points": len(report.annotation.all_points()),
                "offset": rotation_offset(alpha, 1000.0, 544.0, 24.0),
                "area": rispp_area(list(H264_PHASES), alpha),
                "saving": ge_saving_pct(list(H264_PHASES), alpha),
            }
        )
    return rows


def test_ablation_alpha(benchmark, save_artifact):
    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)

    # Offset scales exactly linearly in alpha.
    base = rows[0]["offset"] / ALPHAS[0]
    for row in rows:
        assert row["offset"] == base * row["alpha"]

    # Forecasting becomes monotonically more conservative.
    cand_counts = [r["candidates"] for r in rows]
    assert cand_counts == sorted(cand_counts, reverse=True)
    assert cand_counts[0] >= cand_counts[-1]
    fc_counts = [r["fc_points"] for r in rows]
    assert fc_counts == sorted(fc_counts, reverse=True)

    # Area grows, saving shrinks; at very large alpha RISPP loses its
    # area advantage (the trade-off the paper's GE_constraint bounds).
    areas = [r["area"] for r in rows]
    savings = [r["saving"] for r in rows]
    assert areas == sorted(areas)
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 80
    assert savings[-1] < 0  # alpha=4 exceeds the extensible processor

    table = render_table(
        ["alpha", "FC candidates", "FC points", "FDF offset", "RISPP GE", "saving %"],
        [
            [
                r["alpha"],
                r["candidates"],
                r["fc_points"],
                round(r["offset"], 2),
                round(r["area"]),
                round(r["saving"], 1),
            ]
            for r in rows
        ],
        title="Ablation: the alpha trade-off (forecast conservatism + area)",
    )
    save_artifact("ablation_alpha.txt", table)
