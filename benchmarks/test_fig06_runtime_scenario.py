"""Fig. 6 — the two-task run-time scenario on six Atom Containers.

Executes the full T0..T5 timeline with the multi-task simulator and
asserts every property the paper narrates, then saves the machine
timeline as the regenerated figure.
"""

from repro.apps.h264.scenario import run_fig6_scenario
from repro.reporting import render_container_timeline
from repro.sim import EventKind


def test_fig06_runtime_scenario(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig6_scenario, rounds=2, iterations=1)
    tr = result.runtime.trace

    t0 = result.label("A", "T0")
    t1 = result.label("B", "T1")
    t2 = result.label("B", "T2")
    t3 = result.label("B", "T3")

    execs = tr.of_kind(EventKind.SI_EXECUTED)

    # T0: steady state, both tasks in hardware; SATD on its smallest molecule.
    a_t0 = [e for e in execs if e.task == "A" and t0 <= e.cycle < t1]
    b_t0 = [e for e in execs if e.task == "B" and e.si == "SI0" and e.cycle < t1]
    assert a_t0 and all(e.detail["cycles"] == 24 for e in a_t0)
    assert b_t0 and all(e.detail["mode"] == "C1 F1" for e in b_t0)

    # T1: SI1 forecast -> reallocation away from A -> rotation -> A in SW.
    realloc_t1 = [
        e
        for e in tr.of_kind(EventKind.REALLOCATION)
        if e.cycle == t1 and e.detail["from_task"] == "A"
    ]
    assert len(realloc_t1) == 1
    a_mid = [e for e in execs if e.task == "A" and t1 < e.cycle < t2]
    assert a_mid and any(e.detail["mode"] == "SW" for e in a_mid)

    # SI1 upgrades SW -> HW once its rotation completes.
    si1_modes = [e.detail["mode"] for e in execs if e.si == "SI1"]
    assert si1_modes[0] == "SW" and si1_modes[-1] == "P1 T1 I1"

    # T2: three containers reallocated B -> A, rotations initiated.
    realloc_t2 = [
        e
        for e in tr.of_kind(EventKind.REALLOCATION)
        if e.cycle == t2 and e.detail["from_task"] == "B"
        and e.detail["to_task"] == "A"
    ]
    assert len(realloc_t2) == 3

    # T3: SI0 still executes in hardware on containers now owned by A.
    si0_t3 = [e for e in execs if e.si == "SI0" and e.cycle >= t3]
    assert si0_t3 and all(e.detail["mode"] == "C1 F1" for e in si0_t3)

    # T4/T5: SW -> 24 -> 20 -> 18 molecule ladder after T2.
    ladder = [
        e.detail["cycles"]
        for e in tr.of_kind(EventKind.SI_MODE_SWITCH)
        if e.task == "A" and e.si == "SATD_4x4" and e.cycle > t2
    ]
    assert ladder == [24, 20, 18]

    # No fixed rotation schedule: requests are aperiodic.
    req_cycles = sorted({e.cycle for e in tr.of_kind(EventKind.ROTATION_REQUESTED)})
    gaps = {b - a for a, b in zip(req_cycles, req_cycles[1:])}
    assert len(gaps) > 1

    header = (
        "Fig. 6 scenario timeline "
        f"(T0={t0} T1={t1} T2={t2} T3={t3})\n"
    )
    chart = render_container_timeline(
        tr, 6, markers={"T0": t0, "T1": t1, "T2": t2, "T3": t3}
    )
    save_artifact(
        "fig06_runtime_scenario.txt",
        header + chart + "\n\n" + tr.render_timeline(),
    )
